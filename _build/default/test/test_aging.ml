(* Tests for circuit-level aging: the duty extraction -> dvth map -> STA
   composition. *)

let c17 = Circuit.Generators.c17 ()
let sp = Logic.Signal_prob.analytic c17 ~input_sp:(Array.make 5 0.5)
let config = Aging.Circuit_aging.default_config ()

let map standby = Aging.Circuit_aging.stage_dvth_map config c17 ~node_sp:sp ~standby

let all_stage_dvth t f =
  let acc = ref [] in
  Array.iteri
    (fun i node ->
      match node with
      | Circuit.Netlist.Primary_input _ -> ()
      | Circuit.Netlist.Gate { cell; _ } ->
        for stage = 0 to Array.length cell.Cell.Stdcell.stages - 1 do
          acc := f ~gate:i ~stage :: !acc
        done)
    t.Circuit.Netlist.nodes;
  !acc

let test_default_config () =
  Alcotest.(check (float 0.0)) "ten-year lifetime" Physics.Units.ten_years
    config.Aging.Circuit_aging.time;
  Alcotest.(check (float 0.0)) "active temperature" 400.0
    config.Aging.Circuit_aging.schedule.Nbti.Schedule.t_ref

let test_dvth_bounded_by_dc () =
  let dc =
    Nbti.Vth_shift.dvth_dc_ref config.Aging.Circuit_aging.params config.Aging.Circuit_aging.tech
      (Nbti.Vth_shift.nominal_pmos config.Aging.Circuit_aging.tech)
      ~time:config.Aging.Circuit_aging.time
  in
  let shifts = all_stage_dvth c17 (map Aging.Circuit_aging.Standby_all_stressed) in
  List.iter
    (fun v -> Alcotest.(check bool) "0 <= dvth <= DC" true (v >= 0.0 && v <= dc))
    shifts

let test_bounding_states_order () =
  let worst = map Aging.Circuit_aging.Standby_all_stressed in
  let relaxed = map Aging.Circuit_aging.Standby_all_relaxed in
  let vector = map (Aging.Circuit_aging.Standby_vector (Array.make 5 false)) in
  let w = all_stage_dvth c17 worst and r = all_stage_dvth c17 relaxed and v = all_stage_dvth c17 vector in
  List.iter2
    (fun hi mid -> Alcotest.(check bool) "worst >= vector" true (hi >= mid -. 1e-12))
    w v;
  List.iter2
    (fun mid lo -> Alcotest.(check bool) "vector >= relaxed" true (mid >= lo -. 1e-12))
    v r

let test_analyze_consistency () =
  let a =
    Aging.Circuit_aging.analyze config c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  Alcotest.(check bool) "aged slower than fresh" true
    (a.Aging.Circuit_aging.aged.Sta.Timing.max_delay > a.Aging.Circuit_aging.fresh.Sta.Timing.max_delay);
  Alcotest.(check bool) "degradation in a plausible band" true
    (a.Aging.Circuit_aging.degradation > 0.005 && a.Aging.Circuit_aging.degradation < 0.15);
  Alcotest.(check bool) "max dvth tens of mV" true
    (a.Aging.Circuit_aging.max_dvth > 0.005 && a.Aging.Circuit_aging.max_dvth < 0.1)

let test_worst_case_config_pessimistic () =
  (* The paper's thesis: assuming the worst-case (active) temperature for
     the standby phase overestimates degradation when standby is cool. *)
  let temperature_aware =
    Aging.Circuit_aging.analyze config c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  let pessimistic =
    Aging.Circuit_aging.analyze (Aging.Circuit_aging.worst_case_config config) c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  Alcotest.(check bool) "worst-case temp overestimates" true
    (pessimistic.Aging.Circuit_aging.degradation > temperature_aware.Aging.Circuit_aging.degradation)

let test_relaxed_below_stressed_circuit_level () =
  let worst =
    Aging.Circuit_aging.analyze config c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  let best =
    Aging.Circuit_aging.analyze config c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_relaxed ()
  in
  Alcotest.(check bool) "bounding order at circuit level" true
    (worst.Aging.Circuit_aging.degradation > best.Aging.Circuit_aging.degradation)

let test_longer_lifetime_more_degradation () =
  let short = { config with Aging.Circuit_aging.time = Physics.Units.years 1.0 } in
  let a1 =
    Aging.Circuit_aging.analyze short c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  let a10 =
    Aging.Circuit_aging.analyze config c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  Alcotest.(check bool) "monotone in lifetime" true
    (a10.Aging.Circuit_aging.degradation > a1.Aging.Circuit_aging.degradation)

let test_pbti_never_reduces_degradation () =
  let with_pbti = Aging.Circuit_aging.default_config ~pbti_scale:0.5 () in
  List.iter
    (fun standby ->
      let d cfg = (Aging.Circuit_aging.analyze cfg c17 ~node_sp:sp ~standby ()).Aging.Circuit_aging.degradation in
      Alcotest.(check bool) "adding PBTI can only slow the circuit" true
        (d with_pbti >= d config -. 1e-12))
    [
      Aging.Circuit_aging.Standby_all_stressed;
      Aging.Circuit_aging.Standby_all_relaxed;
      Aging.Circuit_aging.Standby_vector (Array.make 5 true);
    ]

let test_pbti_narrows_the_standby_lever () =
  (* The mirror effect: the all-1 state that relaxes every PMOS stresses
     every NMOS, so with PBTI on the worst-to-best gap shrinks. Visible at
     a hot standby; at 330 K the Arrhenius factor suppresses the standby
     NMOS stress below the rise/fall crossover and nothing changes. *)
  let gap cfg =
    let d standby =
      (Aging.Circuit_aging.analyze cfg c17 ~node_sp:sp ~standby ()).Aging.Circuit_aging.degradation
    in
    d Aging.Circuit_aging.Standby_all_stressed -. d Aging.Circuit_aging.Standby_all_relaxed
  in
  let hot = Aging.Circuit_aging.default_config ~t_standby:400.0 () in
  let hot_pbti = Aging.Circuit_aging.default_config ~t_standby:400.0 ~pbti_scale:0.5 () in
  Alcotest.(check bool) "internal-node-control potential shrinks" true
    (gap hot_pbti < gap hot);
  Alcotest.(check bool) "all-relaxed now ages the NMOS" true
    ((Aging.Circuit_aging.analyze hot_pbti c17 ~node_sp:sp
        ~standby:Aging.Circuit_aging.Standby_all_relaxed ())
       .Aging.Circuit_aging.degradation
    > (Aging.Circuit_aging.analyze hot c17 ~node_sp:sp
         ~standby:Aging.Circuit_aging.Standby_all_relaxed ())
        .Aging.Circuit_aging.degradation)

let test_nmos_duty_table_mirror () =
  let pmos = Aging.Circuit_aging.duty_table c17 ~node_sp:sp ~standby:Aging.Circuit_aging.Standby_all_stressed in
  let nmos =
    Aging.Circuit_aging.duty_table ~polarity:`Nmos c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed
  in
  Array.iteri
    (fun i stages ->
      Array.iteri
        (fun s (_, standby_p) ->
          let _, standby_n = nmos.(i).(s) in
          Alcotest.(check (float 0.0)) "PMOS bound 1" 1.0 standby_p;
          Alcotest.(check (float 0.0)) "NMOS bound 0" 0.0 standby_n)
        stages)
    pmos

(* Property: for random standby vectors the degradation is always between
   the two bounding states. *)
let prop_vector_between_bounds =
  QCheck.Test.make ~name:"standby vectors degrade between the bounds" ~count:20
    (QCheck.make (QCheck.Gen.int_bound 31))
    (fun bits ->
      let v = Array.init 5 (fun i -> (bits lsr i) land 1 = 1) in
      let d standby =
        (Aging.Circuit_aging.analyze config c17 ~node_sp:sp ~standby ()).Aging.Circuit_aging
          .degradation
      in
      let w = d Aging.Circuit_aging.Standby_all_stressed in
      let r = d Aging.Circuit_aging.Standby_all_relaxed in
      let dv = d (Aging.Circuit_aging.Standby_vector v) in
      dv >= r -. 1e-12 && dv <= w +. 1e-12)

let props = List.map QCheck_alcotest.to_alcotest [ prop_vector_between_bounds ]

let () =
  Alcotest.run "aging"
    [
      ( "circuit-aging",
        [
          Alcotest.test_case "default config" `Quick test_default_config;
          Alcotest.test_case "dvth bounded by DC" `Quick test_dvth_bounded_by_dc;
          Alcotest.test_case "bounding states order" `Quick test_bounding_states_order;
          Alcotest.test_case "analyze consistency" `Quick test_analyze_consistency;
          Alcotest.test_case "worst-case temperature pessimism" `Quick test_worst_case_config_pessimistic;
          Alcotest.test_case "circuit-level bound order" `Quick test_relaxed_below_stressed_circuit_level;
          Alcotest.test_case "lifetime monotone" `Quick test_longer_lifetime_more_degradation;
          Alcotest.test_case "PBTI never reduces" `Quick test_pbti_never_reduces_degradation;
          Alcotest.test_case "PBTI narrows the lever" `Quick test_pbti_narrows_the_standby_lever;
          Alcotest.test_case "NMOS duty mirror" `Quick test_nmos_duty_table_mirror;
        ] );
      ("properties", props);
    ]
