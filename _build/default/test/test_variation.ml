(* Tests for the process-variation Monte-Carlo study (Fig. 12). *)

let c17 = Circuit.Generators.c17 ()
let sp = Logic.Signal_prob.analytic c17 ~input_sp:(Array.make 5 0.5)
let aging = Aging.Circuit_aging.default_config ~t_standby:400.0 ()

let study ?(n_samples = 200) ?(seed = 51) () =
  let config = Variation.Process_var.default_config ~n_samples aging in
  Variation.Process_var.run config c17 ~node_sp:sp
    ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed)

let test_config_validation () =
  Alcotest.(check bool) "negative sigma rejected" true
    (try
       ignore (Variation.Process_var.default_config ~sigma_vth:(-0.01) aging);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "n=1 rejected" true
    (try
       ignore (Variation.Process_var.default_config ~n_samples:1 aging);
       false
     with Invalid_argument _ -> true)

let test_sample_count () =
  let s = study () in
  Alcotest.(check int) "samples" 200 (Array.length s.Variation.Process_var.samples);
  Alcotest.(check int) "summary n" 200 s.Variation.Process_var.fresh.Physics.Stats.n

let test_aging_shifts_mean () =
  let s = study () in
  Alcotest.(check bool) "aged mean above fresh mean" true
    (s.Variation.Process_var.aged.Physics.Stats.mean > s.Variation.Process_var.fresh.Physics.Stats.mean)

let test_every_sample_ages () =
  let s = study () in
  Array.iter
    (fun sample ->
      Alcotest.(check bool) "aged >= fresh per sample" true
        (sample.Variation.Process_var.aged_delay >= sample.Variation.Process_var.fresh_delay))
    s.Variation.Process_var.samples

let test_variance_compensation () =
  (* Wang et al. [51]: lower-Vth gates degrade faster, which squeezes the
     aged distribution: sigma/mean must shrink. *)
  let s = study ~n_samples:400 () in
  let cv (x : Physics.Stats.summary) = x.Physics.Stats.stddev /. x.Physics.Stats.mean in
  Alcotest.(check bool) "relative spread shrinks with stress" true
    (cv s.Variation.Process_var.aged < cv s.Variation.Process_var.fresh)

let test_deterministic () =
  let a = study ~seed:7 () and b = study ~seed:7 () in
  Alcotest.(check (float 0.0)) "same mean" a.Variation.Process_var.fresh.Physics.Stats.mean
    b.Variation.Process_var.fresh.Physics.Stats.mean

let test_seeds_differ () =
  let a = study ~seed:7 () and b = study ~seed:8 () in
  Alcotest.(check bool) "different draws" true
    (a.Variation.Process_var.fresh.Physics.Stats.mean
    <> b.Variation.Process_var.fresh.Physics.Stats.mean)

let test_crossover_at_ten_years () =
  (* Fig. 12's headline: after enough stress the aged -3sigma bound passes
     the fresh +3sigma bound. The paper shows this on C880; any circuit
     deep enough for path averaging to shrink sigma works — c17's 3-gate
     paths are too shallow, so use c432. *)
  let c432 = Circuit.Generators.by_name "c432" in
  let sp432 = Logic.Signal_prob.analytic c432 ~input_sp:(Logic.Signal_prob.uniform_inputs c432 0.5) in
  let config = Variation.Process_var.default_config ~n_samples:150 aging in
  let s =
    Variation.Process_var.run config c432 ~node_sp:sp432
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed:53)
  in
  Alcotest.(check bool) "aging dominates variation" true (Variation.Process_var.crossover s)

let test_no_crossover_when_fresh () =
  (* With a tiny lifetime, aging cannot dominate a 15 mV sigma. *)
  let short = { aging with Aging.Circuit_aging.time = 3600.0 } in
  let config = Variation.Process_var.default_config ~n_samples:200 short in
  let s =
    Variation.Process_var.run config c17 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed:52)
  in
  Alcotest.(check bool) "one hour of stress does not dominate" false
    (Variation.Process_var.crossover s)

let test_three_sigma_bands () =
  let s = study () in
  let lo, hi = s.Variation.Process_var.fresh_3sigma in
  Alcotest.(check (float 1e-18)) "band width"
    (6.0 *. s.Variation.Process_var.fresh.Physics.Stats.stddev)
    (hi -. lo)

(* --- SSTA --- *)

let ssta_setup () =
  let c432 = Circuit.Generators.by_name "c432" in
  let sp432 = Logic.Signal_prob.analytic c432 ~input_sp:(Array.make 36 0.5) in
  (c432, sp432, Aging.Circuit_aging.Standby_all_stressed)

let test_clark_max_properties () =
  let g m v = { Variation.Ssta.mean = m; var = v } in
  (* identical inputs: mean rises by theta*phi(0), variance shrinks *)
  let m = Variation.Ssta.clark_max (g 1.0 0.04) (g 1.0 0.04) in
  Alcotest.(check bool) "max of equals exceeds the mean" true (m.Variation.Ssta.mean > 1.0);
  Alcotest.(check bool) "variance shrinks" true (m.Variation.Ssta.var < 0.08);
  (* dominant input passes through *)
  let d = Variation.Ssta.clark_max (g 10.0 0.01) (g 1.0 0.01) in
  Alcotest.(check (float 1e-6)) "dominant mean" 10.0 d.Variation.Ssta.mean;
  Alcotest.(check (float 1e-6)) "dominant var" 0.01 d.Variation.Ssta.var;
  (* degenerate (zero variance) falls back to plain max *)
  let z = Variation.Ssta.clark_max (g 2.0 0.0) (g 3.0 0.0) in
  Alcotest.(check (float 0.0)) "plain max" 3.0 z.Variation.Ssta.mean

let test_ssta_matches_monte_carlo () =
  let c432, sp432, standby = ssta_setup () in
  let aging = Aging.Circuit_aging.default_config ~t_standby:400.0 () in
  let fresh = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:false in
  let aged_r = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:true in
  let mc_cfg = Variation.Process_var.default_config ~n_samples:300 aging in
  let mc = Variation.Process_var.run mc_cfg c432 ~node_sp:sp432 ~standby ~rng:(Physics.Rng.create ~seed:2) in
  let (fm, fs), (am, asd) = Variation.Ssta.compare_mc ~fresh ~aged:aged_r ~mc in
  Alcotest.(check bool) "fresh mean within 1%" true (Float.abs fm < 0.01);
  Alcotest.(check bool) "fresh sigma within 15%" true (Float.abs fs < 0.15);
  Alcotest.(check bool) "aged mean within 1%" true (Float.abs am < 0.01);
  Alcotest.(check bool) "aged sigma within 25%" true (Float.abs asd < 0.25)

let test_ssta_shows_compensation () =
  let c432, sp432, standby = ssta_setup () in
  let aging = Aging.Circuit_aging.default_config ~t_standby:400.0 () in
  let fresh = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:false in
  let aged_r = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:true in
  Alcotest.(check bool) "mean grows" true
    (aged_r.Variation.Ssta.circuit.Variation.Ssta.mean > fresh.Variation.Ssta.circuit.Variation.Ssta.mean);
  Alcotest.(check bool) "sigma shrinks (compensation, analytically)" true
    (Variation.Ssta.sigma aged_r.Variation.Ssta.circuit < Variation.Ssta.sigma fresh.Variation.Ssta.circuit)

let test_parametric_yield () =
  let g m v = { Variation.Ssta.mean = m; var = v } in
  Alcotest.(check (float 1e-9)) "target at mean" 0.5
    (Variation.Ssta.parametric_yield (g 1.0 0.01) ~target:1.0);
  Alcotest.(check bool) "generous target" true
    (Variation.Ssta.parametric_yield (g 1.0 0.01) ~target:2.0 > 0.999);
  Alcotest.(check (float 0.0)) "deterministic pass" 1.0
    (Variation.Ssta.parametric_yield (g 1.0 0.0) ~target:1.0);
  Alcotest.(check (float 0.0)) "deterministic fail" 0.0
    (Variation.Ssta.parametric_yield (g 2.0 0.0) ~target:1.0)

let test_aging_costs_yield () =
  (* The signoff framing of Fig. 12: at a fixed cycle-time target, aging
     erodes the parametric yield. *)
  let c432, sp432, standby = ssta_setup () in
  let aging = Aging.Circuit_aging.default_config ~t_standby:400.0 () in
  let fresh = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:false in
  let aged = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:true in
  (* Target: fresh mean + 3 sigma - essentially 100% fresh yield. *)
  let target =
    fresh.Variation.Ssta.circuit.Variation.Ssta.mean
    +. (3.0 *. Variation.Ssta.sigma fresh.Variation.Ssta.circuit)
  in
  let yf = Variation.Ssta.parametric_yield fresh.Variation.Ssta.circuit ~target in
  let ya = Variation.Ssta.parametric_yield aged.Variation.Ssta.circuit ~target in
  Alcotest.(check bool) "fresh yield ~1" true (yf > 0.99);
  Alcotest.(check bool) "aged yield collapses" true (ya < 0.1)

let test_ssta_arrival_monotone () =
  let c432, sp432, standby = ssta_setup () in
  let aging = Aging.Circuit_aging.default_config () in
  let r = Variation.Ssta.analyze aging c432 ~sigma_vth:0.015 ~node_sp:sp432 ~standby ~aged:false in
  Array.iteri
    (fun i node ->
      match node with
      | Circuit.Netlist.Primary_input _ -> ()
      | Circuit.Netlist.Gate { fanin; _ } ->
        Array.iter
          (fun f ->
            Alcotest.(check bool) "mean after fanin" true
              (r.Variation.Ssta.arrival.(i).Variation.Ssta.mean
              > r.Variation.Ssta.arrival.(f).Variation.Ssta.mean))
          fanin)
    c432.Circuit.Netlist.nodes

let () =
  Alcotest.run "variation"
    [
      ( "process-var",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "sample count" `Quick test_sample_count;
          Alcotest.test_case "aging shifts mean" `Quick test_aging_shifts_mean;
          Alcotest.test_case "every sample ages" `Quick test_every_sample_ages;
          Alcotest.test_case "variance compensation" `Quick test_variance_compensation;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "10-year crossover" `Quick test_crossover_at_ten_years;
          Alcotest.test_case "no fresh crossover" `Quick test_no_crossover_when_fresh;
          Alcotest.test_case "3-sigma bands" `Quick test_three_sigma_bands;
        ] );
      ( "ssta",
        [
          Alcotest.test_case "clark max" `Quick test_clark_max_properties;
          Alcotest.test_case "matches Monte-Carlo" `Quick test_ssta_matches_monte_carlo;
          Alcotest.test_case "compensation analytically" `Quick test_ssta_shows_compensation;
          Alcotest.test_case "arrival monotone" `Quick test_ssta_arrival_monotone;
          Alcotest.test_case "parametric yield" `Quick test_parametric_yield;
          Alcotest.test_case "aging costs yield" `Quick test_aging_costs_yield;
        ] );
    ]
