(* Integration tests: the paper's anchor numbers and cross-module
   behaviours on real benchmark circuits (EXPERIMENTS.md records the full
   paper-vs-measured comparison; these tests pin the load-bearing shapes
   so regressions are caught by `dune runtest`). *)

let tech = Device.Tech.ptm_90nm
let params = Nbti.Rd_model.default_params
let ten_years = Physics.Units.ten_years
let cond = Nbti.Vth_shift.nominal_pmos tech

let worst_sched ~ras ~t_standby =
  Nbti.Schedule.active_standby ~ras ~t_active:400.0 ~t_standby ~active_duty:0.5 ~standby_duty:1.0 ()

let device_degradation schedule =
  Nbti.Degradation.factor tech
    ~dvth:(Nbti.Vth_shift.dvth params tech cond ~schedule ~time:ten_years)

(* --- Table 4 anchors (device-level bounds) --- *)

let test_table4_worst_at_400k () =
  (* Paper: worst-case degradation 7.35 % at T_standby = 400 K, RAS 1:9. *)
  let d = device_degradation (worst_sched ~ras:(1.0, 9.0) ~t_standby:400.0) in
  Alcotest.(check bool) "7.35% +- 0.5" true (d > 0.068 && d < 0.079)

let test_table4_worst_at_330k () =
  (* Paper: 4.05 % at T_standby = 330 K. *)
  let d = device_degradation (worst_sched ~ras:(1.0, 9.0) ~t_standby:330.0) in
  Alcotest.(check bool) "4.05% +- 0.5" true (d > 0.035 && d < 0.046)

let test_table4_best_case () =
  (* Paper: best case ~3.32 % regardless of standby temperature. *)
  let best t_standby =
    Nbti.Degradation.factor tech
      ~dvth:
        (Nbti.Vth_shift.dvth params tech cond
           ~schedule:
             (Nbti.Schedule.active_standby ~ras:(1.0, 9.0) ~t_active:400.0 ~t_standby
                ~active_duty:0.5 ~standby_duty:0.0 ())
           ~time:ten_years)
  in
  let b330 = best 330.0 and b400 = best 400.0 in
  Alcotest.(check bool) "3.32% +- 0.4" true (b330 > 0.028 && b330 < 0.038);
  Alcotest.(check bool) "temperature-independent" true (Float.abs (b400 -. b330) /. b330 < 0.05)

let test_table4_potential_band () =
  (* Paper: internal-node-control potential grows from ~18 % (330 K) to
     ~55 % (400 K). Our device-level bound reproduces the trend and the
     hot-end magnitude. *)
  let potential t_standby =
    let w = device_degradation (worst_sched ~ras:(1.0, 9.0) ~t_standby) in
    let b =
      Nbti.Degradation.factor tech
        ~dvth:
          (Nbti.Vth_shift.dvth params tech cond
             ~schedule:
               (Nbti.Schedule.active_standby ~ras:(1.0, 9.0) ~t_active:400.0 ~t_standby
                  ~active_duty:0.5 ~standby_duty:0.0 ())
             ~time:ten_years)
    in
    (w -. b) /. w
  in
  let p330 = potential 330.0 and p400 = potential 400.0 in
  Alcotest.(check bool) "grows with standby temperature" true (p400 > p330);
  Alcotest.(check bool) "hot end near 55%" true (p400 > 0.45 && p400 < 0.62)

(* --- Table 1 anchors --- *)

let test_table1_gap_at_1_9 () =
  (* The largest dVth gap across standby temperatures occurs at RAS 1:9
     (the paper reports 9.4 mV; our calibration roughly doubles the
     absolute scale but preserves the structure). *)
  let dv ~ras ~t_standby =
    Nbti.Vth_shift.dvth params tech cond ~schedule:(worst_sched ~ras ~t_standby) ~time:ten_years
  in
  let gap ras = dv ~ras ~t_standby:400.0 -. dv ~ras ~t_standby:330.0 in
  Alcotest.(check bool) "gap largest at 1:9" true
    (gap (1.0, 9.0) > gap (1.0, 1.0) && gap (1.0, 1.0) > gap (9.0, 1.0));
  Alcotest.(check bool) "gap is tens of mV" true (gap (1.0, 9.0) > 0.005 && gap (1.0, 9.0) < 0.04)

(* --- Fig. 5: circuit degradation below device dVth percentage --- *)

let test_fig5_circuit_below_device () =
  let c432 = Circuit.Generators.by_name "c432" in
  let config = Aging.Circuit_aging.default_config () in
  let sp = Logic.Signal_prob.analytic c432 ~input_sp:(Logic.Signal_prob.uniform_inputs c432 0.5) in
  let a =
    Aging.Circuit_aging.analyze config c432 ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  let dvth_pct = a.Aging.Circuit_aging.max_dvth /. tech.Device.Tech.vth_p in
  Alcotest.(check bool) "delay % well below dVth %" true
    (a.Aging.Circuit_aging.degradation < 0.5 *. dvth_pct)

(* --- Fig. 11 anchor: c432 without ST at 330 K is ~3.87 % --- *)

let test_fig11_c432_no_st () =
  let c432 = Circuit.Generators.by_name "c432" in
  let config = Aging.Circuit_aging.default_config () in
  let sp = Logic.Signal_prob.analytic c432 ~input_sp:(Logic.Signal_prob.uniform_inputs c432 0.5) in
  let d = Sleep.St_insertion.without_st config c432 ~node_sp:sp in
  Alcotest.(check bool) "3.87% +- 0.6" true (d > 0.032 && d < 0.045)

(* --- Table 2 shape: leakage vs NBTI direction per gate family --- *)

let test_table2_nor_alignment () =
  (* For NOR gates the minimum-leakage vector (all 1) is also the
     best-NBTI vector (nothing stressed). *)
  let cell = Cell.Stdcell.nor_ 2 in
  let lut = Cell.Cell_leakage.build_lut tech cell ~temp_k:400.0 in
  let (best_vec, _), _ = Cell.Cell_leakage.extremes lut in
  Alcotest.(check bool) "min leakage = all ones" true (best_vec = [| true; true |]);
  Alcotest.(check bool) "and nothing stressed" false (Cell.Cell_nbti.any_stressed cell ~vector:best_vec)

let test_table2_nand_conflict () =
  (* For NAND gates the minimum-leakage vector (all 0) is the WORST NBTI
     vector (every PMOS stressed) — the co-optimization motivation. *)
  let cell = Cell.Stdcell.nand_ 2 in
  let lut = Cell.Cell_leakage.build_lut tech cell ~temp_k:400.0 in
  let (best_vec, _), _ = Cell.Cell_leakage.extremes lut in
  Alcotest.(check bool) "min leakage = all zeros" true (best_vec = [| false; false |]);
  let flags = Cell.Cell_nbti.stressed_under_vector cell ~vector:best_vec in
  Alcotest.(check bool) "every PMOS stressed" true
    (List.for_all (fun d -> d.Cell.Cell_nbti.stressed) flags)

(* --- Table 3 shape on a real benchmark --- *)

let test_table3_c432_ivc () =
  let cfg =
    Flow.Platform.default_config ~aging:(Aging.Circuit_aging.default_config ~ras:(1.0, 5.0) ()) ()
  in
  let c432 = Circuit.Generators.by_name "c432" in
  let p = Flow.Platform.prepare cfg c432 in
  let result, _ = Flow.Platform.optimize_ivc cfg p ~rng:(Physics.Rng.create ~seed:71) ~pool:32 () in
  (* Paper: minimized delay degradation ~4.3 % of circuit delay on
     average; the MLV-to-MLV spread is tiny (~0.1 %). *)
  let best = result.Ivc.Co_opt.best.Ivc.Co_opt.degradation in
  Alcotest.(check bool) "IVC degradation in the paper's band" true (best > 0.025 && best < 0.055);
  Alcotest.(check bool) "MLV spread is small" true (result.Ivc.Co_opt.spread < 0.01)

(* --- Cross-benchmark sanity: the full small suite analyses cleanly --- *)

let test_small_suite_analyzes () =
  let cfg = Flow.Platform.default_config () in
  List.iter
    (fun net ->
      let p = Flow.Platform.prepare cfg net in
      let a = Flow.Platform.analyze cfg p ~standby:Aging.Circuit_aging.Standby_all_stressed in
      Alcotest.(check bool)
        (net.Circuit.Netlist.name ^ " degradation plausible")
        true
        (a.Flow.Platform.degradation > 0.01 && a.Flow.Platform.degradation < 0.12))
    (Circuit.Generators.small_suite ())

(* --- Ablation direction: worst-case temperature assumption --- *)

let test_ablation_worst_case_temperature () =
  let c432 = Circuit.Generators.by_name "c432" in
  let config = Aging.Circuit_aging.default_config () in
  let sp = Logic.Signal_prob.analytic c432 ~input_sp:(Logic.Signal_prob.uniform_inputs c432 0.5) in
  let aware =
    (Aging.Circuit_aging.analyze config c432 ~node_sp:sp
       ~standby:Aging.Circuit_aging.Standby_all_stressed ())
      .Aging.Circuit_aging.degradation
  in
  let pessimistic =
    (Aging.Circuit_aging.analyze
       (Aging.Circuit_aging.worst_case_config config)
       c432 ~node_sp:sp ~standby:Aging.Circuit_aging.Standby_all_stressed ())
      .Aging.Circuit_aging.degradation
  in
  (* The headline claim: worst-case-temperature analysis is substantially
     pessimistic — at RAS 1:9 / 330 K nearly 2x. *)
  Alcotest.(check bool) "pessimism factor > 1.5" true (pessimistic /. aware > 1.5)

let () =
  Alcotest.run "integration"
    [
      ( "paper-anchors",
        [
          Alcotest.test_case "Table 4 worst @400K" `Quick test_table4_worst_at_400k;
          Alcotest.test_case "Table 4 worst @330K" `Quick test_table4_worst_at_330k;
          Alcotest.test_case "Table 4 best case" `Quick test_table4_best_case;
          Alcotest.test_case "Table 4 potential" `Quick test_table4_potential_band;
          Alcotest.test_case "Table 1 RAS gap" `Quick test_table1_gap_at_1_9;
          Alcotest.test_case "Fig. 5 circuit vs device" `Quick test_fig5_circuit_below_device;
          Alcotest.test_case "Fig. 11 c432 no-ST" `Quick test_fig11_c432_no_st;
          Alcotest.test_case "Table 2 NOR alignment" `Quick test_table2_nor_alignment;
          Alcotest.test_case "Table 2 NAND conflict" `Quick test_table2_nand_conflict;
          Alcotest.test_case "Table 3 IVC on c432" `Quick test_table3_c432_ivc;
        ] );
      ( "system",
        [
          Alcotest.test_case "small suite analyzes" `Quick test_small_suite_analyzes;
          Alcotest.test_case "worst-case-temp ablation" `Quick test_ablation_worst_case_temperature;
        ] );
    ]
