(* Tests for logic simulation and signal probability estimation. *)

let c17 = Circuit.Generators.c17 ()

(* Exact signal probabilities by full enumeration, weighting each input
   vector by its probability — the oracle both estimators are checked
   against. *)
let exact_sp t ~input_sp =
  let n_pi = Circuit.Netlist.n_primary_inputs t in
  let probs = Array.make (Circuit.Netlist.n_nodes t) 0.0 in
  for idx = 0 to (1 lsl n_pi) - 1 do
    let inputs = Array.init n_pi (fun i -> (idx lsr i) land 1 = 1) in
    let w = ref 1.0 in
    Array.iteri (fun i b -> w := !w *. (if b then input_sp.(i) else 1.0 -. input_sp.(i))) inputs;
    let values = Logic.Eval.eval t ~inputs in
    Array.iteri (fun i v -> if v then probs.(i) <- probs.(i) +. !w) values
  done;
  probs

let test_eval_known_vector () =
  (* All-zero inputs: every first-level NAND outputs 1, outputs are 0. *)
  let outs = Logic.Eval.eval_outputs c17 ~inputs:(Array.make 5 false) in
  Alcotest.(check (array bool)) "all-0 inputs" [| false; false |] outs

let test_eval_all_nodes () =
  let values = Logic.Eval.eval c17 ~inputs:(Array.make 5 true) in
  Alcotest.(check int) "value per node" (Circuit.Netlist.n_nodes c17) (Array.length values)

let test_eval_packed_matches_scalar () =
  (* Pack the full 32-vector truth table into one 64-lane word set. *)
  let n_pi = 5 in
  let packed =
    Array.init n_pi (fun i ->
        let w = ref 0L in
        for idx = 0 to 31 do
          if (idx lsr i) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L idx)
        done;
        !w)
  in
  let packed_values = Logic.Eval.eval_packed c17 ~inputs:packed in
  for idx = 0 to 31 do
    let inputs = Array.init n_pi (fun i -> (idx lsr i) land 1 = 1) in
    let scalar = Logic.Eval.eval c17 ~inputs in
    Array.iteri
      (fun node w ->
        let bit = Int64.logand (Int64.shift_right_logical w idx) 1L = 1L in
        Alcotest.(check bool) (Printf.sprintf "node %d vector %d" node idx) scalar.(node) bit)
      packed_values
  done

let test_count_ones () =
  let n_pi = 5 in
  let packed =
    Array.init n_pi (fun i ->
        let w = ref 0L in
        for idx = 0 to 31 do
          if (idx lsr i) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L idx)
        done;
        !w)
  in
  let ones = Logic.Eval.count_ones c17 ~inputs:packed in
  (* Each PI is 1 in exactly half of the 32 vectors (the upper 32 lanes of
     the word are zero). *)
  Array.iter
    (fun id -> Alcotest.(check int) "PI popcount" 16 ones.(id))
    (Circuit.Netlist.primary_inputs c17)

let test_input_vector_of_int () =
  let v = Logic.Eval.input_vector_of_int c17 5 in
  Alcotest.(check (array bool)) "little-endian" [| true; false; true; false; false |] v

let test_analytic_sp_on_tree () =
  (* A fanout-free tree: the independence assumption is exact. *)
  let b = Circuit.Netlist.Builder.create ~name:"tree" in
  let a = Circuit.Netlist.Builder.input b "a" in
  let c = Circuit.Netlist.Builder.input b "b" in
  let d = Circuit.Netlist.Builder.input b "c" in
  let n1 = Circuit.Netlist.Builder.and2 b a c in
  let n2 = Circuit.Netlist.Builder.or2 b n1 d in
  Circuit.Netlist.Builder.output b n2;
  let t = Circuit.Netlist.Builder.finish b in
  let input_sp = [| 0.5; 0.4; 0.3 |] in
  let sp = Logic.Signal_prob.analytic t ~input_sp in
  let exact = exact_sp t ~input_sp in
  Array.iteri
    (fun i e -> Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" i) e sp.(i))
    exact

let test_analytic_sp_close_on_c17 () =
  (* c17 has reconvergent fanout, so analytic SPs are approximate: they
     must still land within a few percent of the exact values. *)
  let input_sp = Array.make 5 0.5 in
  let sp = Logic.Signal_prob.analytic c17 ~input_sp in
  let exact = exact_sp c17 ~input_sp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "node %d within 0.1" i) true (Float.abs (sp.(i) -. e) < 0.1))
    exact

let test_monte_carlo_converges () =
  let input_sp = Array.make 5 0.5 in
  let rng = Physics.Rng.create ~seed:101 in
  let sp = Logic.Signal_prob.monte_carlo c17 ~rng ~input_sp ~n_vectors:20000 in
  let exact = exact_sp c17 ~input_sp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "node %d within 0.02" i) true (Float.abs (sp.(i) -. e) < 0.02))
    exact

let test_monte_carlo_biased_inputs () =
  let input_sp = [| 0.9; 0.1; 0.5; 0.8; 0.2 |] in
  let rng = Physics.Rng.create ~seed:102 in
  let sp = Logic.Signal_prob.monte_carlo c17 ~rng ~input_sp ~n_vectors:30000 in
  let exact = exact_sp c17 ~input_sp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "node %d" i) true (Float.abs (sp.(i) -. e) < 0.02))
    exact

let test_monte_carlo_deterministic () =
  let input_sp = Array.make 5 0.5 in
  let a =
    Logic.Signal_prob.monte_carlo c17 ~rng:(Physics.Rng.create ~seed:9) ~input_sp ~n_vectors:640
  in
  let b =
    Logic.Signal_prob.monte_carlo c17 ~rng:(Physics.Rng.create ~seed:9) ~input_sp ~n_vectors:640
  in
  Alcotest.(check (array (float 0.0))) "same seed, same estimate" a b

let test_uniform_inputs () =
  let sp = Logic.Signal_prob.uniform_inputs c17 0.5 in
  Alcotest.(check int) "length" 5 (Array.length sp);
  Array.iter (fun p -> Alcotest.(check (float 0.0)) "value" 0.5 p) sp

let test_sp_validation () =
  Alcotest.(check bool) "bad probability rejected" true
    (try
       ignore (Logic.Signal_prob.analytic c17 ~input_sp:[| 0.5; 0.5; 1.5; 0.5; 0.5 |]);
       false
     with Invalid_argument _ -> true)

(* Property: packed and scalar evaluation agree on random circuits/vectors. *)
let prop_packed_matches_scalar =
  QCheck.Test.make ~name:"bit-parallel simulation agrees with scalar" ~count:50
    (QCheck.make
       QCheck.Gen.(pair (oneofl [ "c17"; "c432"; "c499" ]) (int_bound 0x3FFFFFFF)))
    (fun (name, bits) ->
      let t = Circuit.Generators.by_name name in
      let n_pi = Circuit.Netlist.n_primary_inputs t in
      let inputs = Array.init n_pi (fun i -> (bits lsr (i mod 30)) land 1 = 1) in
      let scalar = Logic.Eval.eval t ~inputs in
      let packed =
        Logic.Eval.eval_packed t ~inputs:(Array.map (fun b -> if b then -1L else 0L) inputs)
      in
      Array.for_all2 (fun s w -> if s then w = -1L else w = 0L) scalar packed)

let props = List.map QCheck_alcotest.to_alcotest [ prop_packed_matches_scalar ]

let () =
  Alcotest.run "logic"
    [
      ( "eval",
        [
          Alcotest.test_case "known vector" `Quick test_eval_known_vector;
          Alcotest.test_case "all nodes" `Quick test_eval_all_nodes;
          Alcotest.test_case "packed vs scalar" `Quick test_eval_packed_matches_scalar;
          Alcotest.test_case "count ones" `Quick test_count_ones;
          Alcotest.test_case "input vector of int" `Quick test_input_vector_of_int;
        ] );
      ( "signal-prob",
        [
          Alcotest.test_case "analytic exact on trees" `Quick test_analytic_sp_on_tree;
          Alcotest.test_case "analytic close on c17" `Quick test_analytic_sp_close_on_c17;
          Alcotest.test_case "monte carlo converges" `Quick test_monte_carlo_converges;
          Alcotest.test_case "biased inputs" `Quick test_monte_carlo_biased_inputs;
          Alcotest.test_case "deterministic" `Quick test_monte_carlo_deterministic;
          Alcotest.test_case "uniform inputs" `Quick test_uniform_inputs;
          Alcotest.test_case "validation" `Quick test_sp_validation;
        ] );
      ("properties", props);
    ]
