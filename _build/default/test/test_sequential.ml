(* Tests for sequential circuit support: DFF parsing, simulation,
   generators and the steady-state sequential signal probabilities. *)

let check_close ?(eps = 1e-9) msg expected actual = Alcotest.(check (float eps)) msg expected actual

let counter4 = Sequential.counter ~bits:4
let lfsr8 = Sequential.lfsr ~bits:8

let int_of_state state =
  Array.to_list state |> List.mapi (fun i b -> if b then 1 lsl i else 0) |> List.fold_left ( + ) 0

(* --- structure --- *)

let test_counter_structure () =
  Alcotest.(check int) "flops" 4 (Sequential.n_flops counter4);
  Alcotest.(check int) "enable input" 1 (Sequential.n_real_inputs counter4)

let test_lfsr_structure () =
  Alcotest.(check int) "flops" 8 (Sequential.n_flops lfsr8);
  Alcotest.(check int) "no real inputs" 0 (Sequential.n_real_inputs lfsr8)

(* --- simulation --- *)

let test_counter_counts () =
  let state = ref (Array.make 4 false) in
  for expected = 1 to 20 do
    let _, next = Sequential.step counter4 ~inputs:[| true |] ~state:!state in
    state := next;
    Alcotest.(check int) "increments" (expected mod 16) (int_of_state !state)
  done

let test_counter_holds_when_disabled () =
  let state0 = [| true; false; true; false |] in
  let _, next = Sequential.step counter4 ~inputs:[| false |] ~state:state0 in
  Alcotest.(check int) "state held" (int_of_state state0) (int_of_state next)

let test_counter_simulate () =
  let inputs = Array.make 7 [| true |] in
  let outs, final = Sequential.simulate counter4 ~inputs ~initial_state:(Array.make 4 false) in
  Alcotest.(check int) "cycles of outputs" 7 (Array.length outs);
  Alcotest.(check int) "final count" 7 (int_of_state final)

let test_lfsr_maximal_period () =
  let start = Array.append [| true |] (Array.make 7 false) in
  let state = ref start in
  let period = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let _, next = Sequential.step lfsr8 ~inputs:[||] ~state:!state in
    state := next;
    incr period;
    if next = start || !period > 256 then continue_ := false
  done;
  Alcotest.(check int) "2^8 - 1" 255 !period

let test_lfsr_zero_state_stuck () =
  let zero = Array.make 8 false in
  let _, next = Sequential.step lfsr8 ~inputs:[||] ~state:zero in
  Alcotest.(check int) "all-zero is the absorbing state" 0 (int_of_state next)

(* --- parsing --- *)

let toggle_text =
  "INPUT(a)\nOUTPUT(z)\nq = DFF(d)\nd = XOR(a, q)\nz = AND(a, q)\n"

let test_parse_dff () =
  let s = Sequential.parse_string ~name:"toggle" toggle_text in
  Alcotest.(check int) "one flop" 1 (Sequential.n_flops s);
  Alcotest.(check int) "one real input" 1 (Sequential.n_real_inputs s);
  (* Toggle flop: with a = 1 the state flips every cycle. *)
  let state = ref [| false |] in
  let seen = ref [] in
  for _ = 1 to 4 do
    let _, next = Sequential.step s ~inputs:[| true |] ~state:!state in
    seen := next.(0) :: !seen;
    state := next
  done;
  Alcotest.(check (list bool)) "toggles" [ false; true; false; true ] !seen

let test_parse_preserves_outputs () =
  let s = Sequential.parse_string ~name:"toggle" toggle_text in
  (* z = a AND q: with q = 1, a = 1 the output is 1. *)
  let out, _ = Sequential.step s ~inputs:[| true |] ~state:[| true |] in
  Alcotest.(check (array bool)) "combinational output" [| true |] out

let test_parse_unknown_dff_input_fails () =
  Alcotest.(check bool) "dangling D" true
    (try
       ignore (Sequential.parse_string ~name:"bad" "INPUT(a)\nOUTPUT(a)\nq = DFF(nowhere)\n");
       false
     with Failure _ -> true)

let test_of_netlist_rejects_gate_as_q () =
  let b = Circuit.Netlist.Builder.create ~name:"t" in
  let a = Circuit.Netlist.Builder.input b "a" in
  let g = Circuit.Netlist.Builder.not_ b a in
  Circuit.Netlist.Builder.output b g;
  let net = Circuit.Netlist.Builder.finish b in
  let gate_name = Circuit.Netlist.node_name net g in
  Alcotest.(check bool) "gate as flop Q rejected" true
    (try
       ignore (Sequential.of_netlist net ~flops:[ (gate_name, "a") ]);
       false
     with Invalid_argument _ -> true)

(* --- steady-state SPs --- *)

let test_lfsr_sp_is_half () =
  let sp, _ = Sequential.steady_state_sp lfsr8 ~input_sp:[||] () in
  Array.iter
    (fun id -> check_close ~eps:1e-6 "state bits at 0.5" 0.5 sp.(id))
    (Circuit.Netlist.primary_inputs lfsr8.Sequential.comb)

let test_counter_sp_converges () =
  let sp, sweeps = Sequential.steady_state_sp counter4 ~input_sp:[| 0.7 |] () in
  Alcotest.(check bool) "converged" true (sweeps < 200);
  Array.iter
    (fun p -> Alcotest.(check bool) "probabilities" true (p >= 0.0 && p <= 1.0))
    sp

let test_biased_toggle_sp () =
  (* The toggle flop q' = a xor q has SP exactly 0.5 at its fixed point
     whenever 0 < sp(a): solve p = a(1-p) + (1-a)p -> p = 0.5. *)
  let s = Sequential.parse_string ~name:"toggle" toggle_text in
  let sp, _ = Sequential.steady_state_sp s ~input_sp:[| 0.3 |] () in
  let q_node = s.Sequential.flops.(0).Sequential.q_node in
  check_close ~eps:1e-4 "toggle fixed point" 0.5 sp.(q_node)

let test_core_input_sp_assembly () =
  let v = Sequential.core_input_sp counter4 ~input_sp:[| 0.9 |] ~state_sp:(Array.make 4 0.25) in
  Alcotest.(check int) "covers all core PIs" 5 (Array.length v);
  (* en is the first declared PI *)
  check_close "enable SP placed" 0.9 v.(0)

(* --- aging integration --- *)

let test_sequential_core_ages () =
  (* The combinational core of a sequential design drops straight into the
     aging platform with the steady-state SPs. *)
  let sp, _ = Sequential.steady_state_sp counter4 ~input_sp:[| 0.5 |] () in
  let aging = Aging.Circuit_aging.default_config () in
  let a =
    Aging.Circuit_aging.analyze aging counter4.Sequential.comb ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  Alcotest.(check bool) "plausible degradation" true
    (a.Aging.Circuit_aging.degradation > 0.01 && a.Aging.Circuit_aging.degradation < 0.12)

(* --- s27 and random sequential --- *)

let test_s27_structure () =
  let s = Sequential.s27 () in
  Alcotest.(check int) "4 inputs" 4 (Sequential.n_real_inputs s);
  Alcotest.(check int) "3 flops" 3 (Sequential.n_flops s);
  Alcotest.(check int) "10 gates" 10 (Circuit.Netlist.n_gates s.Sequential.comb);
  Alcotest.(check int) "1 output" 1 (Array.length s.Sequential.comb.Circuit.Netlist.outputs)

let test_s27_is_alive () =
  (* Under random stimulus the output and the state must both change at
     some point - catches dead or constant reductions. *)
  let s = Sequential.s27 () in
  let rng = Physics.Rng.create ~seed:27 in
  let state = ref (Array.make 3 false) in
  let outs = ref [] and states = ref [] in
  for _ = 1 to 64 do
    let inputs = Array.init 4 (fun _ -> Physics.Rng.bool rng) in
    let out, next = Sequential.step s ~inputs ~state:!state in
    outs := out.(0) :: !outs;
    states := int_of_state next :: !states;
    state := next
  done;
  Alcotest.(check bool) "output toggles" true (List.exists not !outs && List.exists Fun.id !outs);
  Alcotest.(check bool) "state visits several values" true
    (List.length (List.sort_uniq compare !states) >= 2)

let test_s27_sp_converges () =
  let s = Sequential.s27 () in
  let sp, sweeps = Sequential.steady_state_sp s ~input_sp:(Array.make 4 0.5) () in
  Alcotest.(check bool) "fast convergence" true (sweeps < 100);
  Array.iter (fun p -> Alcotest.(check bool) "valid prob" true (p >= 0.0 && p <= 1.0)) sp

let test_random_profile () =
  let r = Sequential.random_profile ~name:"sr" ~n_pi:10 ~n_ff:8 ~n_gates:120 ~seed:5 in
  Alcotest.(check int) "flops" 8 (Sequential.n_flops r);
  Alcotest.(check int) "real inputs" 10 (Sequential.n_real_inputs r);
  Alcotest.(check int) "gates" 120 (Circuit.Netlist.n_gates r.Sequential.comb);
  (* deterministic *)
  let r2 = Sequential.random_profile ~name:"sr" ~n_pi:10 ~n_ff:8 ~n_gates:120 ~seed:5 in
  let sp1, _ = Sequential.steady_state_sp r ~input_sp:(Array.make 10 0.5) () in
  let sp2, _ = Sequential.steady_state_sp r2 ~input_sp:(Array.make 10 0.5) () in
  Alcotest.(check (array (float 0.0))) "deterministic" sp1 sp2

(* --- properties --- *)

let prop_counter_increments =
  QCheck.Test.make ~name:"enabled counter always increments mod 2^bits" ~count:200
    (QCheck.make (QCheck.Gen.int_bound 15))
    (fun v ->
      let state = Array.init 4 (fun i -> (v lsr i) land 1 = 1) in
      let _, next = Sequential.step counter4 ~inputs:[| true |] ~state in
      int_of_state next = (v + 1) mod 16)

let prop_lfsr_shifts =
  QCheck.Test.make ~name:"LFSR state shifts by one position" ~count:200
    (QCheck.make (QCheck.Gen.int_bound 254))
    (fun v ->
      let v = v + 1 in
      let state = Array.init 8 (fun i -> (v lsr i) land 1 = 1) in
      let _, next = Sequential.step lfsr8 ~inputs:[||] ~state in
      let shifted_ok = ref true in
      for i = 1 to 7 do
        if next.(i) <> state.(i - 1) then shifted_ok := false
      done;
      !shifted_ok)

let prop_parse_never_escapes_failure =
  QCheck.Test.make ~name:"DFF parser only ever raises Failure" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_bound 80))
    (fun text ->
      match Sequential.parse_string ~name:"fuzz" text with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_counter_increments; prop_lfsr_shifts; prop_parse_never_escapes_failure ]

let () =
  Alcotest.run "sequential"
    [
      ( "structure",
        [
          Alcotest.test_case "counter" `Quick test_counter_structure;
          Alcotest.test_case "lfsr" `Quick test_lfsr_structure;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "counter counts" `Quick test_counter_counts;
          Alcotest.test_case "counter holds" `Quick test_counter_holds_when_disabled;
          Alcotest.test_case "simulate" `Quick test_counter_simulate;
          Alcotest.test_case "lfsr maximal period" `Quick test_lfsr_maximal_period;
          Alcotest.test_case "lfsr zero state" `Quick test_lfsr_zero_state_stuck;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "DFF parse + toggle" `Quick test_parse_dff;
          Alcotest.test_case "outputs preserved" `Quick test_parse_preserves_outputs;
          Alcotest.test_case "dangling D fails" `Quick test_parse_unknown_dff_input_fails;
          Alcotest.test_case "gate as Q rejected" `Quick test_of_netlist_rejects_gate_as_q;
        ] );
      ( "signal-probability",
        [
          Alcotest.test_case "lfsr at 0.5" `Quick test_lfsr_sp_is_half;
          Alcotest.test_case "counter converges" `Quick test_counter_sp_converges;
          Alcotest.test_case "toggle fixed point" `Quick test_biased_toggle_sp;
          Alcotest.test_case "input assembly" `Quick test_core_input_sp_assembly;
        ] );
      ( "aging",
        [ Alcotest.test_case "core ages" `Quick test_sequential_core_ages ] );
      ( "s27-and-random",
        [
          Alcotest.test_case "s27 structure" `Quick test_s27_structure;
          Alcotest.test_case "s27 alive" `Quick test_s27_is_alive;
          Alcotest.test_case "s27 SP converges" `Quick test_s27_sp_converges;
          Alcotest.test_case "random profile" `Quick test_random_profile;
        ] );
      ("properties", props);
    ]
