(* Tests for the device layer: technology parameters, Arrhenius rates and
   the analytical MOSFET models. *)

let tech = Device.Tech.ptm_90nm

let check_close ?(eps = 1e-9) msg expected actual = Alcotest.(check (float eps)) msg expected actual

(* --- Arrhenius --- *)

let test_arrhenius_rate () =
  let law = { Device.Arrhenius.prefactor = 2.0; ea_ev = 0.0 } in
  check_close "zero Ea gives prefactor" 2.0 (Device.Arrhenius.rate law ~temp_k:350.0)

let test_arrhenius_ratio () =
  let law = { Device.Arrhenius.prefactor = 1.0; ea_ev = 0.48 } in
  check_close "equal temps" 1.0 (Device.Arrhenius.ratio law ~t1:400.0 ~t2:400.0);
  let r = Device.Arrhenius.ratio law ~t1:330.0 ~t2:400.0 in
  Alcotest.(check bool) "cooler is slower" true (r < 1.0);
  (* exp(-0.48/kB * (1/330 - 1/400)) ~ 0.052 *)
  check_close ~eps:0.005 "expected magnitude" 0.052 r

let test_arrhenius_of_reference () =
  let law = Device.Arrhenius.of_reference ~rate_at:1e-3 ~temp_k:400.0 ~ea_ev:0.3 in
  check_close ~eps:1e-12 "reference reproduced" 1e-3 (Device.Arrhenius.rate law ~temp_k:400.0)

(* --- Tech --- *)

let test_cox () =
  (* eps_SiO2 / 2.05nm ~ 1.68e-2 F/m^2 *)
  check_close ~eps:2e-4 "Cox" 1.684e-2 (Device.Tech.cox tech)

let test_vth_temperature () =
  check_close "300K nominal" 0.22 (Device.Tech.vth_at tech `P ~temp_k:300.0);
  check_close ~eps:1e-9 "400K lower" (0.22 -. 0.07) (Device.Tech.vth_at tech `P ~temp_k:400.0);
  Alcotest.(check bool)
    "never negative" true
    (Device.Tech.vth_at tech `N ~temp_k:1000.0 >= 0.0)

let test_with_vth_p () =
  let t2 = Device.Tech.with_vth_p tech 0.3 in
  check_close "replaced" 0.3 t2.Device.Tech.vth_p;
  check_close "original untouched" 0.22 tech.Device.Tech.vth_p;
  check_close "other fields kept" tech.Device.Tech.vdd t2.Device.Tech.vdd

let test_scaled_nodes () =
  Alcotest.(check bool)
    "65nm leaks more than 90nm" true
    (Device.Tech.ptm_65nm.Device.Tech.i0_sub > tech.Device.Tech.i0_sub);
  Alcotest.(check bool)
    "45nm thinner oxide" true
    (Device.Tech.ptm_45nm.Device.Tech.tox < tech.Device.Tech.tox)

(* --- Mosfet: drive current --- *)

let test_on_current_basic () =
  let n = Device.Mosfet.nmos ~wl:1.0 () in
  let i = Device.Mosfet.on_current tech n ~temp_k:300.0 in
  (* k_sat * (1.0 - 0.22)^1.3 = 5.4e-4 * 0.78^1.3 *)
  check_close ~eps:1e-7 "alpha-power value" (5.4e-4 *. Float.pow 0.78 1.3) i

let test_on_current_width_scaling () =
  let n1 = Device.Mosfet.nmos ~wl:1.0 () and n3 = Device.Mosfet.nmos ~wl:3.0 () in
  check_close ~eps:1e-9 "linear in W/L"
    (3.0 *. Device.Mosfet.on_current tech n1 ~temp_k:300.0)
    (Device.Mosfet.on_current tech n3 ~temp_k:300.0)

let test_on_current_cutoff () =
  let n = Device.Mosfet.nmos ~wl:1.0 () in
  check_close "no overdrive, no current" 0.0
    (Device.Mosfet.on_current_vgs tech n ~vgs:0.1 ~temp_k:300.0)

let test_on_current_dvth () =
  let fresh = Device.Mosfet.pmos ~wl:2.0 () in
  let aged = Device.Mosfet.pmos ~dvth:0.05 ~wl:2.0 () in
  Alcotest.(check bool)
    "NBTI shift reduces drive" true
    (Device.Mosfet.on_current tech aged ~temp_k:400.0
    < Device.Mosfet.on_current tech fresh ~temp_k:400.0)

let test_pmos_weaker () =
  let n = Device.Mosfet.nmos ~wl:1.0 () and p = Device.Mosfet.pmos ~wl:1.0 () in
  Alcotest.(check bool)
    "hole mobility penalty" true
    (Device.Mosfet.on_current tech p ~temp_k:300.0 < Device.Mosfet.on_current tech n ~temp_k:300.0)

(* --- Mosfet: subthreshold --- *)

let sub ?(vgs = 0.0) ?(vds = 1.0) ?(temp_k = 300.0) ?(wl = 1.0) () =
  Device.Mosfet.subthreshold_current tech (Device.Mosfet.nmos ~wl ()) ~vgs ~vds ~temp_k

let test_sub_monotone_vgs () =
  Alcotest.(check bool) "higher gate leaks more" true (sub ~vgs:0.1 () > sub ~vgs:0.0 ());
  Alcotest.(check bool) "negative gate leaks less" true (sub ~vgs:(-0.1) () < sub ~vgs:0.0 ())

let test_sub_monotone_vds () =
  Alcotest.(check bool) "vds saturation" true (sub ~vds:1.0 () > sub ~vds:0.01 ());
  Alcotest.(check (float 0.0)) "zero vds" 0.0 (sub ~vds:0.0 ())

let test_sub_monotone_temp () =
  Alcotest.(check bool) "hotter leaks more" true (sub ~temp_k:400.0 () > sub ~temp_k:300.0 ())

let test_sub_temp_magnitude () =
  (* Subthreshold leakage grows by roughly an order of magnitude from 300K
     to 400K at this Vth and swing. *)
  let ratio = sub ~temp_k:400.0 () /. sub ~temp_k:300.0 () in
  Alcotest.(check bool) "300->400K growth plausible" true (ratio > 5.0 && ratio < 100.0)

let test_sub_decade_per_swing () =
  (* One subthreshold swing S = n vT ln10 below threshold cuts the current
     10x. *)
  let s = 1.5 *. Physics.Const.thermal_voltage ~temp_k:300.0 *. Float.log 10.0 in
  let ratio = sub ~vgs:0.0 () /. sub ~vgs:(-.s) () in
  Alcotest.(check (float 0.01)) "one decade" 10.0 ratio

(* --- Mosfet: gate leakage and capacitance --- *)

let test_gate_leakage () =
  let p = Device.Mosfet.pmos ~wl:2.0 () in
  check_close ~eps:1e-12 "full bias anchor" (2.0 *. tech.Device.Tech.jg0)
    (Device.Mosfet.gate_leakage tech p ~vox:tech.Device.Tech.vdd);
  Alcotest.(check bool)
    "lower oxide voltage leaks less" true
    (Device.Mosfet.gate_leakage tech p ~vox:0.5 < Device.Mosfet.gate_leakage tech p ~vox:1.0);
  check_close "zero bias" 0.0 (Device.Mosfet.gate_leakage tech p ~vox:0.0)

let test_input_capacitance () =
  let p = Device.Mosfet.pmos ~wl:2.0 () in
  check_close ~eps:1e-20 "cap scales with width" (2.0 *. tech.Device.Tech.cg_per_wl)
    (Device.Mosfet.input_capacitance tech p)

let test_delay_factor () =
  let n = Device.Mosfet.nmos ~wl:1.0 () in
  let d = Device.Mosfet.delay_factor tech n ~cload:1e-15 ~temp_k:300.0 in
  Alcotest.(check bool) "picosecond scale" true (d > 1e-13 && d < 1e-11);
  let d2 = Device.Mosfet.delay_factor tech n ~cload:2e-15 ~temp_k:300.0 in
  check_close ~eps:1e-18 "linear in load" (2.0 *. d) d2

(* --- Properties --- *)

let prop_sub_monotone =
  QCheck.Test.make ~name:"subthreshold current is monotone in vgs" ~count:200
    QCheck.(pair (float_range (-0.5) 0.2) (float_range 0.0 0.19))
    (fun (vgs, dv) -> sub ~vgs:(vgs +. dv) () >= sub ~vgs () -. 1e-30)

let prop_on_current_monotone_vgs =
  QCheck.Test.make ~name:"on-current is monotone in gate drive" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 0.5))
    (fun (vgs, dv) ->
      let n = Device.Mosfet.nmos ~wl:1.0 () in
      Device.Mosfet.on_current_vgs tech n ~vgs:(vgs +. dv) ~temp_k:300.0
      >= Device.Mosfet.on_current_vgs tech n ~vgs ~temp_k:300.0 -. 1e-30)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_sub_monotone; prop_on_current_monotone_vgs ]

let () =
  Alcotest.run "device"
    [
      ( "arrhenius",
        [
          Alcotest.test_case "rate" `Quick test_arrhenius_rate;
          Alcotest.test_case "ratio" `Quick test_arrhenius_ratio;
          Alcotest.test_case "of_reference" `Quick test_arrhenius_of_reference;
        ] );
      ( "tech",
        [
          Alcotest.test_case "cox" `Quick test_cox;
          Alcotest.test_case "vth temperature dependence" `Quick test_vth_temperature;
          Alcotest.test_case "with_vth_p" `Quick test_with_vth_p;
          Alcotest.test_case "scaled nodes" `Quick test_scaled_nodes;
        ] );
      ( "drive-current",
        [
          Alcotest.test_case "alpha-power value" `Quick test_on_current_basic;
          Alcotest.test_case "width scaling" `Quick test_on_current_width_scaling;
          Alcotest.test_case "cutoff" `Quick test_on_current_cutoff;
          Alcotest.test_case "NBTI shift reduces drive" `Quick test_on_current_dvth;
          Alcotest.test_case "PMOS weaker than NMOS" `Quick test_pmos_weaker;
        ] );
      ( "subthreshold",
        [
          Alcotest.test_case "monotone in vgs" `Quick test_sub_monotone_vgs;
          Alcotest.test_case "monotone in vds" `Quick test_sub_monotone_vds;
          Alcotest.test_case "monotone in temperature" `Quick test_sub_monotone_temp;
          Alcotest.test_case "temperature magnitude" `Quick test_sub_temp_magnitude;
          Alcotest.test_case "decade per swing" `Quick test_sub_decade_per_swing;
        ] );
      ( "gate-leakage-caps",
        [
          Alcotest.test_case "gate tunneling" `Quick test_gate_leakage;
          Alcotest.test_case "input capacitance" `Quick test_input_capacitance;
          Alcotest.test_case "delay factor" `Quick test_delay_factor;
        ] );
      ("properties", props);
    ]
