(* Unit and property tests for the physics substrate: constants, units,
   numerics, statistics and the deterministic RNG. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-9) msg expected actual = Alcotest.(check (float eps)) msg expected actual

(* --- Const / Units --- *)

let test_thermal_voltage () =
  check_close ~eps:1e-4 "vT at 300K" 0.02585 (Physics.Const.thermal_voltage ~temp_k:300.0);
  Alcotest.(check bool)
    "vT grows with T" true
    (Physics.Const.thermal_voltage ~temp_k:400.0 > Physics.Const.thermal_voltage ~temp_k:300.0)

let test_eps () =
  check_close ~eps:1e-13 "SiO2 permittivity" (3.9 *. 8.8541878128e-12) Physics.Const.eps_sio2

let test_temperature_conversions () =
  check_float "0C" 273.15 (Physics.Units.kelvin_of_celsius 0.0);
  check_float "roundtrip" 57.0 (Physics.Units.celsius_of_kelvin (Physics.Units.kelvin_of_celsius 57.0))

let test_time_units () =
  check_float "hour" 3600.0 Physics.Units.hour;
  check_float "year" (365.25 *. 86400.0) Physics.Units.year;
  Alcotest.(check bool) "10y approx 3e8s" true (Float.abs (Physics.Units.years 10.0 -. 3.156e8) < 1e6)

let test_si_string () =
  Alcotest.(check string) "nA" "3.200 nA" (Physics.Units.si_string ~unit:"A" 3.2e-9);
  Alcotest.(check string) "zero" "0 A" (Physics.Units.si_string ~unit:"A" 0.0);
  Alcotest.(check string) "negative" "-1.500 mV" (Physics.Units.si_string ~unit:"V" (-1.5e-3));
  Alcotest.(check string) "unitless" "2.000 k" (Physics.Units.si_string 2000.0)

let test_pp_percent () =
  Alcotest.(check string) "percent" "4.32 %" (Format.asprintf "%a" Physics.Units.pp_percent 0.0432)

(* --- Numerics --- *)

let test_bisect () =
  let root = Physics.Numerics.bisect ~f:(fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close ~eps:1e-9 "sqrt 2" (Float.sqrt 2.0) root

let test_bisect_endpoint_roots () =
  check_float "root at lo" 1.0 (Physics.Numerics.bisect ~f:(fun x -> x -. 1.0) 1.0 3.0);
  check_float "root at hi" 3.0 (Physics.Numerics.bisect ~f:(fun x -> x -. 3.0) 1.0 3.0)

let test_bisect_no_bracket () =
  Alcotest.check_raises "same sign raises"
    (Physics.Numerics.No_bracket "bisect: f(lo) and f(hi) have the same sign") (fun () ->
      ignore (Physics.Numerics.bisect ~f:(fun x -> (x *. x) +. 1.0) 0.0 1.0))

let test_brent () =
  let root = Physics.Numerics.brent ~f:(fun x -> Float.exp x -. 5.0) 0.0 3.0 in
  check_close ~eps:1e-9 "ln 5" (Float.log 5.0) root

let test_brent_hard () =
  (* A flat-then-steep function typical of subthreshold currents. *)
  let f x = Float.exp (20.0 *. (x -. 0.8)) -. 1e-3 in
  let root = Physics.Numerics.brent ~f 0.0 1.0 in
  check_close ~eps:1e-7 "exponential root" (0.8 +. (Float.log 1e-3 /. 20.0)) root

let test_fixpoint () =
  (* x = cos x has the Dottie fixed point. *)
  let x = Physics.Numerics.fixpoint ~f:Float.cos 1.0 in
  check_close ~eps:1e-8 "dottie" 0.7390851332151607 x

let test_interp_linear () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 10.0; 40.0 |] in
  check_float "midpoint" 5.0 (Physics.Numerics.interp_linear ~xs ~ys 0.5);
  check_float "second segment" 25.0 (Physics.Numerics.interp_linear ~xs ~ys 1.5);
  check_float "clamp low" 0.0 (Physics.Numerics.interp_linear ~xs ~ys (-1.0));
  check_float "clamp high" 40.0 (Physics.Numerics.interp_linear ~xs ~ys 5.0);
  check_float "exact knot" 10.0 (Physics.Numerics.interp_linear ~xs ~ys 1.0)

let test_integrate () =
  let v = Physics.Numerics.integrate_trapezoid ~f:(fun x -> x *. x) ~a:0.0 ~b:1.0 ~n:1000 in
  check_close ~eps:1e-5 "x^2 over [0,1]" (1.0 /. 3.0) v

let test_kahan () =
  let xs = Array.make 10000 0.1 in
  check_close ~eps:1e-10 "sum of 0.1s" 1000.0 (Physics.Numerics.kahan_sum xs)

let test_linspace_logspace () =
  let l = Physics.Numerics.linspace ~lo:0.0 ~hi:1.0 ~n:5 in
  Alcotest.(check int) "linspace n" 5 (Array.length l);
  check_float "linspace endpoint" 1.0 l.(4);
  check_float "linspace step" 0.25 l.(1);
  let g = Physics.Numerics.logspace ~lo:1.0 ~hi:100.0 ~n:3 in
  check_close ~eps:1e-9 "logspace mid" 10.0 g.(1)

let test_close () =
  Alcotest.(check bool) "close rtol" true (Physics.Numerics.close 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "not close" false (Physics.Numerics.close 1.0 1.1);
  Alcotest.(check bool) "atol" true (Physics.Numerics.close ~atol:0.2 1.0 1.1)

(* --- Stats --- *)

let test_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Physics.Stats.mean xs);
  check_close ~eps:1e-9 "variance" 4.571428571428571 (Physics.Stats.variance xs);
  check_float "single-element variance" 0.0 (Physics.Stats.variance [| 3.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Physics.Stats.median xs);
  check_float "p0" 1.0 (Physics.Stats.percentile xs ~p:0.0);
  check_float "p100" 5.0 (Physics.Stats.percentile xs ~p:100.0);
  check_float "p25 interpolated" 2.0 (Physics.Stats.percentile xs ~p:25.0)

let test_min_max () =
  let lo, hi = Physics.Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_histogram () =
  let h = Physics.Stats.histogram [| 0.0; 0.1; 0.9; 1.0 |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "first bin" 2 c0;
  Alcotest.(check int) "last bin includes max" 2 c1

let test_erf_cdf () =
  check_close ~eps:1e-6 "erf 0" 0.0 (Physics.Stats.erf 0.0);
  check_close ~eps:1e-6 "erf odd" (-.Physics.Stats.erf 1.0) (Physics.Stats.erf (-1.0));
  check_close ~eps:1e-6 "erf 1" 0.8427008 (Physics.Stats.erf 1.0);
  check_close ~eps:1e-6 "cdf at mean" 0.5 (Physics.Stats.normal_cdf ~mean:2.0 ~sigma:3.0 2.0);
  check_close ~eps:1e-4 "cdf +1 sigma" 0.8413 (Physics.Stats.normal_cdf ~mean:0.0 ~sigma:1.0 1.0)

let test_normal_pdf () =
  check_close ~eps:1e-9 "pdf peak" (1.0 /. Float.sqrt (2.0 *. Float.pi))
    (Physics.Stats.normal_pdf ~mean:0.0 ~sigma:1.0 0.0)

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close ~eps:1e-9 "self correlation" 1.0 (Physics.Stats.correlation xs xs);
  let ys = Array.map (fun x -> -.x) xs in
  check_close ~eps:1e-9 "anticorrelation" (-1.0) (Physics.Stats.correlation xs ys);
  check_float "constant gives 0" 0.0 (Physics.Stats.correlation xs [| 1.0; 1.0; 1.0; 1.0 |])

let test_summary () =
  let s = Physics.Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Physics.Stats.n;
  check_float "mean" 2.0 s.Physics.Stats.mean;
  check_float "p50" 2.0 s.Physics.Stats.p50

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Physics.Rng.create ~seed:42 and b = Physics.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Physics.Rng.int64 a) (Physics.Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Physics.Rng.create ~seed:1 and b = Physics.Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Physics.Rng.int64 a <> Physics.Rng.int64 b)

let test_rng_split () =
  let a = Physics.Rng.create ~seed:5 in
  let c = Physics.Rng.split a in
  Alcotest.(check bool) "split independent" true (Physics.Rng.int64 a <> Physics.Rng.int64 c)

let test_rng_copy () =
  let a = Physics.Rng.create ~seed:9 in
  ignore (Physics.Rng.int64 a);
  let b = Physics.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Physics.Rng.int64 a) (Physics.Rng.int64 b)

let test_rng_int_range () =
  let rng = Physics.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Physics.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_uniform_range () =
  let rng = Physics.Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let u = Physics.Rng.uniform rng in
    Alcotest.(check bool) "uniform in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_rng_gaussian_moments () =
  let rng = Physics.Rng.create ~seed:11 in
  let xs = Array.init 20000 (fun _ -> Physics.Rng.gaussian rng ~mean:3.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (Physics.Stats.mean xs -. 3.0) < 0.05);
  Alcotest.(check bool) "sigma near 2" true (Float.abs (Physics.Stats.stddev xs -. 2.0) < 0.05)

let test_rng_bernoulli () =
  let rng = Physics.Rng.create ~seed:12 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Physics.Rng.bernoulli rng ~p:0.25 then incr hits
  done;
  Alcotest.(check bool) "p=0.25" true (Float.abs (float_of_int !hits /. 10000.0 -. 0.25) < 0.02);
  Alcotest.(check bool) "p=0 never" false (Physics.Rng.bernoulli rng ~p:0.0)

let test_rng_shuffle () =
  let rng = Physics.Rng.create ~seed:13 in
  let a = Array.init 20 Fun.id in
  Physics.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 20 Fun.id)

let test_rng_choose () =
  let rng = Physics.Rng.create ~seed:14 in
  for _ = 1 to 100 do
    let v = Physics.Rng.choose rng [| 1; 2; 3 |] in
    Alcotest.(check bool) "chosen from array" true (v >= 1 && v <= 3)
  done

(* --- Properties --- *)

let prop_brent_monotone_cubic =
  QCheck.Test.make ~name:"brent finds the root of shifted cubics" ~count:200
    QCheck.(float_range (-10.0) 10.0)
    (fun c ->
      let f x = (x *. x *. x) -. c in
      let root = Physics.Numerics.brent ~f (-30.0) 30.0 in
      Float.abs (f root) < 1e-6)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentiles stay within min..max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (l, p) ->
      let xs = Array.of_list l in
      let v = Physics.Stats.percentile xs ~p in
      let lo, hi = Physics.Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_interp_within_hull =
  QCheck.Test.make ~name:"linear interpolation stays within y-hull" ~count:200
    QCheck.(triple (float_range 0. 1.) (float_range 0. 5.) (float_range (-3.) 3.))
    (fun (x, y0, y1) ->
      let xs = [| 0.0; 1.0 |] and ys = [| y0; y1 |] in
      let v = Physics.Numerics.interp_linear ~xs ~ys x in
      v >= Float.min y0 y1 -. 1e-9 && v <= Float.max y0 y1 +. 1e-9)

let prop_kahan_matches_naive =
  QCheck.Test.make ~name:"kahan sum matches naive within tolerance" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_range (-1e3) 1e3))
    (fun l ->
      let xs = Array.of_list l in
      let naive = Array.fold_left ( +. ) 0.0 xs in
      Float.abs (Physics.Numerics.kahan_sum xs -. naive) < 1e-6)

let props = List.map QCheck_alcotest.to_alcotest
  [ prop_brent_monotone_cubic; prop_percentile_bounds; prop_interp_within_hull; prop_kahan_matches_naive ]

let () =
  Alcotest.run "physics"
    [
      ( "const-units",
        [
          Alcotest.test_case "thermal voltage" `Quick test_thermal_voltage;
          Alcotest.test_case "permittivities" `Quick test_eps;
          Alcotest.test_case "temperature conversions" `Quick test_temperature_conversions;
          Alcotest.test_case "time units" `Quick test_time_units;
          Alcotest.test_case "SI pretty printing" `Quick test_si_string;
          Alcotest.test_case "percent printing" `Quick test_pp_percent;
        ] );
      ( "numerics",
        [
          Alcotest.test_case "bisect sqrt2" `Quick test_bisect;
          Alcotest.test_case "bisect endpoint roots" `Quick test_bisect_endpoint_roots;
          Alcotest.test_case "bisect without bracket" `Quick test_bisect_no_bracket;
          Alcotest.test_case "brent log root" `Quick test_brent;
          Alcotest.test_case "brent stiff exponential" `Quick test_brent_hard;
          Alcotest.test_case "fixpoint" `Quick test_fixpoint;
          Alcotest.test_case "linear interpolation" `Quick test_interp_linear;
          Alcotest.test_case "trapezoid integration" `Quick test_integrate;
          Alcotest.test_case "kahan summation" `Quick test_kahan;
          Alcotest.test_case "linspace/logspace" `Quick test_linspace_logspace;
          Alcotest.test_case "close" `Quick test_close;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and variance" `Quick test_mean_var;
          Alcotest.test_case "percentiles" `Quick test_percentile;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "erf and normal cdf" `Quick test_erf_cdf;
          Alcotest.test_case "normal pdf" `Quick test_normal_pdf;
          Alcotest.test_case "correlation" `Quick test_correlation;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ("properties", props);
    ]
