(* Tests for the extension modules built on the paper's future-work and
   related-work directions: slacks, lifetime solving, MLV rotation,
   control-point insertion, NBTI-aware gate sizing, dual-Vth assignment,
   drive-strength cells and the multi-node thermal grid. *)

let tech = Device.Tech.ptm_90nm
let c17 = Circuit.Generators.c17 ()
let c432 = Circuit.Generators.by_name "c432"

let sp net = Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
let sp17 = sp c17
let sp432 = sp c432
let aging = Aging.Circuit_aging.default_config ()

let check_close ?(eps = 1e-9) msg expected actual = Alcotest.(check (float eps)) msg expected actual

(* --- Stdcell.scaled --- *)

let test_scaled_naming () =
  let x2 = Cell.Stdcell.scaled (Cell.Stdcell.nand_ 2) ~drive:2.0 in
  Alcotest.(check string) "name" "NAND2_X2" x2.Cell.Stdcell.name;
  check_close "drive recorded" 2.0 (Cell.Stdcell.drive_of x2);
  Alcotest.(check string) "base name" "NAND2" (Cell.Stdcell.base_name x2);
  let x4 = Cell.Stdcell.scaled x2 ~drive:2.0 in
  Alcotest.(check string) "composes" "NAND2_X4" x4.Cell.Stdcell.name;
  let back = Cell.Stdcell.scaled x2 ~drive:0.5 in
  Alcotest.(check string) "unscaling restores the library name" "NAND2" back.Cell.Stdcell.name

let test_scaled_preserves_logic () =
  let cell = Cell.Stdcell.scaled Cell.Stdcell.xor2 ~drive:3.0 in
  Alcotest.(check (array bool)) "truth table unchanged" (Cell.Stdcell.truth_table Cell.Stdcell.xor2)
    (Cell.Stdcell.truth_table cell)

let test_scaled_area_and_cap () =
  let cell = Cell.Stdcell.scaled (Cell.Stdcell.nand_ 2) ~drive:2.0 in
  check_close ~eps:1e-9 "area doubles" (2.0 *. Cell.Stdcell.area (Cell.Stdcell.nand_ 2))
    (Cell.Stdcell.area cell);
  check_close ~eps:1e-20 "input cap doubles"
    (2.0 *. Cell.Cell_delay.input_capacitance tech (Cell.Stdcell.nand_ 2) ~pin_index:0)
    (Cell.Cell_delay.input_capacitance tech cell ~pin_index:0)

let test_scaled_speeds_fixed_load () =
  let load = 1e-14 in
  let base = Cell.Cell_delay.fresh_delay tech (Cell.Stdcell.nand_ 2) ~load ~temp_k:400.0 in
  let fast =
    Cell.Cell_delay.fresh_delay tech (Cell.Stdcell.scaled (Cell.Stdcell.nand_ 2) ~drive:2.0) ~load
      ~temp_k:400.0
  in
  Alcotest.(check bool) "roughly halves" true (fast < 0.7 *. base)

(* --- Sta.Slack --- *)

let slack_of net =
  let timing = Sta.Timing.fresh tech net ~temp_k:400.0 () in
  (timing, Sta.Slack.compute net ~timing ())

let test_slack_critical_path_zero () =
  let timing, slack = slack_of c432 in
  List.iter
    (fun i ->
      Alcotest.(check bool) "critical path has ~zero slack" true
        (Float.abs slack.Sta.Slack.slack.(i) < 1e-15))
    timing.Sta.Timing.critical_path

let test_slack_nonnegative_at_critical_target () =
  let _, slack = slack_of c432 in
  Array.iter
    (fun s -> Alcotest.(check bool) "no negative slack at own target" true (s >= -1e-15))
    slack.Sta.Slack.slack;
  Alcotest.(check bool) "min slack is zero" true (Float.abs (Sta.Slack.min_slack slack) < 1e-15)

let test_slack_tighter_target_negative () =
  let timing = Sta.Timing.fresh tech c432 ~temp_k:400.0 () in
  let slack =
    Sta.Slack.compute c432 ~timing ~target:(0.9 *. timing.Sta.Timing.max_delay) ()
  in
  Alcotest.(check bool) "tight target gives negative slack" true (Sta.Slack.min_slack slack < 0.0)

let test_slack_critical_nodes () =
  let timing, slack = slack_of c432 in
  let critical = Sta.Slack.critical_nodes slack ~eps:1e-15 in
  List.iter
    (fun i ->
      Alcotest.(check bool) "path nodes among critical" true (List.mem i critical))
    timing.Sta.Timing.critical_path;
  Alcotest.(check bool) "positive budget" true (Sta.Slack.total_positive_slack slack > 0.0)

(* --- Aging.Lifetime --- *)

let test_lifetime_monotone_in_margin () =
  let solve margin =
    Aging.Lifetime.solve aging c432 ~node_sp:sp432 ~standby:Aging.Circuit_aging.Standby_all_stressed
      ~margin ()
  in
  match (solve 0.02, solve 0.035) with
  | `Lifetime t2, `Lifetime t35 ->
    Alcotest.(check bool) "larger margin, longer life" true (t35 > t2);
    (* Cross-check: degradation at the solved lifetime matches the margin. *)
    let d =
      Aging.Lifetime.degradation_at aging c432 ~node_sp:sp432
        ~standby:Aging.Circuit_aging.Standby_all_stressed ~time:t2
    in
    Alcotest.(check bool) "solution consistent" true (Float.abs (d -. 0.02) < 0.002)
  | _ -> Alcotest.fail "expected finite lifetimes for 2-3.5% margins"

let test_lifetime_extremes () =
  let solve margin =
    Aging.Lifetime.solve aging c432 ~node_sp:sp432 ~standby:Aging.Circuit_aging.Standby_all_stressed
      ~margin ()
  in
  Alcotest.(check bool) "huge margin never fails" true (solve 0.5 = `Never_fails);
  Alcotest.(check bool) "tiny margin fails immediately" true (solve 1e-5 = `Fails_immediately)

let test_lifetime_gated_outlives_stressed () =
  let solve standby =
    Aging.Lifetime.solve aging c432 ~node_sp:sp432 ~standby ~margin:0.03 ()
  in
  match (solve Aging.Circuit_aging.Standby_all_stressed, solve Aging.Circuit_aging.Standby_all_relaxed) with
  | `Lifetime stressed, `Lifetime relaxed ->
    Alcotest.(check bool) "standby relief extends lifetime" true (relaxed > stressed)
  | `Lifetime _, `Never_fails -> () (* even better *)
  | _ -> Alcotest.fail "unexpected solver outcome"

(* --- Ivc.Rotation --- *)

let mlv_candidates net =
  let tables = Leakage.Circuit_leakage.build_tables tech net ~temp_k:400.0 in
  (tables, fst (Ivc.Mlv.probability_based tables net ~rng:(Physics.Rng.create ~seed:5) ()))

let test_rotation_plan_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Ivc.Rotation.uniform_plan []);
       false
     with Invalid_argument _ -> true);
  let p = Ivc.Rotation.uniform_plan [ [| true; false |]; [| false; true |] ] in
  check_close "weights sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 p.Ivc.Rotation.weights)

let test_rotation_duty_blending () =
  (* Rotating the all-0 and all-1 c17 vectors: every standby duty must be
     the average of the two per-vector duties. *)
  let v0 = Array.make 5 false and v1 = Array.make 5 true in
  let plan = Ivc.Rotation.uniform_plan [ v0; v1 ] in
  let blended = Ivc.Rotation.duties c17 ~node_sp:sp17 plan in
  let d0 = Aging.Circuit_aging.duty_table c17 ~node_sp:sp17 ~standby:(Aging.Circuit_aging.Standby_vector v0) in
  let d1 = Aging.Circuit_aging.duty_table c17 ~node_sp:sp17 ~standby:(Aging.Circuit_aging.Standby_vector v1) in
  Array.iteri
    (fun i stages ->
      Array.iteri
        (fun s (active, standby) ->
          check_close ~eps:1e-12 "active unchanged" (fst d0.(i).(s)) active;
          check_close ~eps:1e-12 "standby averaged"
            (0.5 *. (snd d0.(i).(s) +. snd d1.(i).(s)))
            standby)
        stages)
    blended

let test_rotation_bounded_by_worst_vector () =
  (* Blending guarantees the rotated max device shift never exceeds the
     worst single candidate's (per-stage duties are averages). *)
  let _, candidates = mlv_candidates c432 in
  let plan = Ivc.Rotation.select_complementary c432 ~candidates ~k:4 in
  let analyze p = (Ivc.Rotation.analyze aging c432 ~node_sp:sp432 p ()).Aging.Circuit_aging.max_dvth in
  let worst_single =
    List.fold_left
      (fun acc (c : Ivc.Mlv.candidate) ->
        Float.max acc (analyze (Ivc.Rotation.uniform_plan [ c.Ivc.Mlv.vector ])))
      0.0 candidates
  in
  Alcotest.(check bool) "rotation below the worst vector" true
    (analyze plan <= worst_single +. 1e-12)

let test_rotation_spreads_designed_conflict () =
  (* A circuit where the two vectors stress disjoint inverters: rotation
     must halve every standby duty and cut the max shift strictly. *)
  let b = Circuit.Netlist.Builder.create ~name:"conflict" in
  let a = Circuit.Netlist.Builder.input b "a" in
  let c = Circuit.Netlist.Builder.input b "b" in
  let i1 = Circuit.Netlist.Builder.not_ b a in
  let i2 = Circuit.Netlist.Builder.not_ b c in
  Circuit.Netlist.Builder.output b i1;
  Circuit.Netlist.Builder.output b i2;
  let net = Circuit.Netlist.Builder.finish b in
  let spn = Logic.Signal_prob.analytic net ~input_sp:[| 0.5; 0.5 |] in
  (* vector 01 stresses i1, vector 10 stresses i2 *)
  let v01 = [| false; true |] and v10 = [| true; false |] in
  let plan = Ivc.Rotation.uniform_plan [ v01; v10 ] in
  let analyze p = (Ivc.Rotation.analyze aging net ~node_sp:spn p ()).Aging.Circuit_aging.max_dvth in
  let single = analyze (Ivc.Rotation.uniform_plan [ v01 ]) in
  Alcotest.(check bool) "strictly lower max shift" true (analyze plan < single -. 1e-6)

let test_rotation_leakage_is_weighted () =
  let tables, _ = mlv_candidates c17 in
  let v0 = Array.make 5 false and v1 = Array.make 5 true in
  let plan = Ivc.Rotation.uniform_plan [ v0; v1 ] in
  let l0 = Leakage.Circuit_leakage.standby_leakage tables c17 ~vector:v0 in
  let l1 = Leakage.Circuit_leakage.standby_leakage tables c17 ~vector:v1 in
  check_close ~eps:1e-15 "mean of the two" (0.5 *. (l0 +. l1))
    (Ivc.Rotation.leakage_of_plan tables c17 plan)

let test_rotation_select_bounds () =
  let _, candidates = mlv_candidates c432 in
  let plan = Ivc.Rotation.select_complementary c432 ~candidates ~k:3 in
  Alcotest.(check bool) "at most k vectors" true (Array.length plan.Ivc.Rotation.vectors <= 3);
  Alcotest.(check bool) "at least one" true (Array.length plan.Ivc.Rotation.vectors >= 1)

(* --- Ivc.Control_point --- *)

let test_control_point_insert_logic_active () =
  (* With sleep_n = 1 the rewritten circuit computes the original
     function. c17 is all-NAND, so an all-1 standby vector is the one
     that drives internal nets to 0 and creates candidates. *)
  let standby_vector = Array.make 5 true in
  let input_sp = Array.make 5 0.5 in
  let timing = Sta.Timing.fresh tech c17 ~temp_k:400.0 () in
  let slack = Sta.Slack.compute c17 ~timing ~target:(1.5 *. timing.Sta.Timing.max_delay) () in
  let candidates =
    Ivc.Control_point.candidate_gates c17 ~standby_vector ~timing ~slack
      ~slack_eps:(0.8 *. timing.Sta.Timing.max_delay)
  in
  Alcotest.(check bool) "c17 has candidates" true (candidates <> []);
  let ins =
    Ivc.Control_point.insert c17 ~standby_vector ~input_sp ~gates:[ fst (List.hd candidates) ]
  in
  let pis = Circuit.Netlist.primary_inputs ins.Ivc.Control_point.netlist in
  for idx = 0 to 31 do
    let base_inputs = Array.init 5 (fun i -> (idx lsr i) land 1 = 1) in
    (* Build the rewritten circuit's input vector by PI name. *)
    let inputs =
      Array.map
        (fun id ->
          match Circuit.Netlist.node_name ins.Ivc.Control_point.netlist id with
          | "sleep_n" -> true
          | name ->
            let k = ref (-1) in
            Array.iteri
              (fun j pid -> if Circuit.Netlist.node_name c17 pid = name then k := j)
              (Circuit.Netlist.primary_inputs c17);
            base_inputs.(!k))
        pis
    in
    Alcotest.(check (array bool))
      (Printf.sprintf "function preserved (vector %d)" idx)
      (Logic.Eval.eval_outputs c17 ~inputs:base_inputs)
      (Logic.Eval.eval_outputs ins.Ivc.Control_point.netlist ~inputs)
  done

let test_control_point_forces_one_in_standby () =
  let standby_vector = Array.make 5 true in
  let input_sp = Array.make 5 0.5 in
  let timing = Sta.Timing.fresh tech c17 ~temp_k:400.0 () in
  let slack = Sta.Slack.compute c17 ~timing ~target:(1.5 *. timing.Sta.Timing.max_delay) () in
  let candidates =
    Ivc.Control_point.candidate_gates c17 ~standby_vector ~timing ~slack
      ~slack_eps:(0.8 *. timing.Sta.Timing.max_delay)
  in
  let gate = fst (List.hd candidates) in
  let gate_name = Circuit.Netlist.node_name c17 gate in
  let ins = Ivc.Control_point.insert c17 ~standby_vector ~input_sp ~gates:[ gate ] in
  let values =
    Logic.Eval.eval ins.Ivc.Control_point.netlist ~inputs:ins.Ivc.Control_point.standby_vector
  in
  let new_id = ref (-1) in
  Array.iteri
    (fun i _ ->
      if Circuit.Netlist.node_name ins.Ivc.Control_point.netlist i = gate_name then new_id := i)
    ins.Ivc.Control_point.netlist.Circuit.Netlist.nodes;
  Alcotest.(check bool) "controlled gate forced to 1 in standby" true values.(!new_id)

let test_control_point_wins_on_c17 () =
  (* Where the structure permits (every stressed gate's driver is a
     replaceable NAND and sits off the critical path), a control point
     realizes part of Table 4's potential at zero fresh-delay cost. *)
  let hot = Aging.Circuit_aging.default_config ~t_standby:400.0 () in
  let e =
    Ivc.Control_point.evaluate hot c17 ~standby_vector:(Array.make 5 true) ~budget:6
      ~slack_eps_fraction:0.5 ()
  in
  Alcotest.(check bool) "control point placed" true (e.Ivc.Control_point.n_control_points > 0);
  Alcotest.(check bool) "end-of-life delay improves" true
    (e.Ivc.Control_point.aged_improvement > 0.005);
  Alcotest.(check bool) "no fresh-delay cost here" true
    (e.Ivc.Control_point.fresh_with_cp <= e.Ivc.Control_point.baseline_fresh *. 1.001)

let test_control_point_never_hurts () =
  (* The verified greedy refuses insertions that cost more than they
     relieve: on c432 most stressed critical gates are fed by
     non-replaceable cells, so the realized gain is near zero - but never
     negative. *)
  let e =
    Ivc.Control_point.evaluate aging c432 ~standby_vector:(Array.make 36 true) ~budget:12 ()
  in
  Alcotest.(check bool) "never worse than baseline" true
    (e.Ivc.Control_point.aged_improvement >= 0.0);
  Alcotest.(check bool) "area overhead bounded" true
    (e.Ivc.Control_point.area_overhead >= 0.0 && e.Ivc.Control_point.area_overhead < 0.1)

let test_control_point_rejects_nor () =
  (* NOR gates have no forcing-to-1 replacement. *)
  let b = Circuit.Netlist.Builder.create ~name:"t" in
  let a = Circuit.Netlist.Builder.input b "a" in
  let c = Circuit.Netlist.Builder.input b "b" in
  let g = Circuit.Netlist.Builder.nor2 b a c in
  Circuit.Netlist.Builder.output b g;
  let net = Circuit.Netlist.Builder.finish b in
  Alcotest.(check bool) "NOR not replaceable" true
    (try
       ignore
         (Ivc.Control_point.insert net ~standby_vector:[| false; false |]
            ~input_sp:[| 0.5; 0.5 |] ~gates:[ g ]);
       false
     with Invalid_argument _ -> true)

(* --- Mitigation.Gate_sizing --- *)

let test_sizing_meets_target () =
  let r =
    Mitigation.Gate_sizing.optimize aging c432 ~node_sp:sp432
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~margin:0.01 ()
  in
  Alcotest.(check bool) "target met" true r.Mitigation.Gate_sizing.met;
  Alcotest.(check bool) "aged after <= target" true
    (r.Mitigation.Gate_sizing.aged_after <= r.Mitigation.Gate_sizing.target +. 1e-18);
  Alcotest.(check bool) "started above target" true
    (r.Mitigation.Gate_sizing.aged_before > r.Mitigation.Gate_sizing.target);
  Alcotest.(check bool) "area overhead positive, bounded" true
    (r.Mitigation.Gate_sizing.area_overhead > 0.0 && r.Mitigation.Gate_sizing.area_overhead < 0.5)

let test_sizing_drives_bounded () =
  let r =
    Mitigation.Gate_sizing.optimize aging c432 ~node_sp:sp432
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~margin:0.01 ~max_drive:4.0 ()
  in
  Array.iter
    (fun d -> Alcotest.(check bool) "drive within [1, max]" true (d >= 1.0 && d <= 4.0 +. 1e-9))
    r.Mitigation.Gate_sizing.drives

let test_sizing_loose_margin_noop () =
  let r =
    Mitigation.Gate_sizing.optimize aging c432 ~node_sp:sp432
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~margin:0.5 ()
  in
  Alcotest.(check int) "no iterations needed" 0 r.Mitigation.Gate_sizing.iterations;
  check_close "no area change" 0.0 r.Mitigation.Gate_sizing.area_overhead

(* --- Mitigation.Dual_vth --- *)

let dvth_config = Mitigation.Dual_vth.default_config aging

let test_dual_vth_factor () =
  let f = Mitigation.Dual_vth.hvt_delay_factor dvth_config in
  Alcotest.(check bool) "HVT slower" true (f > 1.0 && f < 1.5)

let test_dual_vth_assignment () =
  let r =
    Mitigation.Dual_vth.optimize dvth_config c432 ~node_sp:sp432
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  Alcotest.(check bool) "some gates flipped" true (r.Mitigation.Dual_vth.n_hvt > 0);
  Alcotest.(check bool) "not everything (critical path stays LVT)" true
    (r.Mitigation.Dual_vth.n_hvt < r.Mitigation.Dual_vth.n_gates);
  Alcotest.(check bool) "timing preserved" true
    (r.Mitigation.Dual_vth.fresh_after <= r.Mitigation.Dual_vth.fresh_before *. 1.0 +. 1e-15);
  Alcotest.(check bool) "leakage reduced" true
    (r.Mitigation.Dual_vth.active_leakage_after < r.Mitigation.Dual_vth.active_leakage_before);
  Alcotest.(check bool) "standby leakage bound reduced" true
    (r.Mitigation.Dual_vth.standby_leakage_after < r.Mitigation.Dual_vth.standby_leakage_before)

let test_dual_vth_critical_path_stays_lvt () =
  let r =
    Mitigation.Dual_vth.optimize dvth_config c432 ~node_sp:sp432
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  let timing = Sta.Timing.fresh tech c432 ~temp_k:400.0 () in
  List.iter
    (fun i ->
      match c432.Circuit.Netlist.nodes.(i) with
      | Circuit.Netlist.Primary_input _ -> ()
      | Circuit.Netlist.Gate _ ->
        Alcotest.(check bool) "zero-slack gates keep LVT" false r.Mitigation.Dual_vth.assignment.(i))
    timing.Sta.Timing.critical_path

(* --- Thermal.Grid --- *)

let grid = Thermal.Grid.create ()

let test_grid_uniform_matches_band () =
  let n = Thermal.Grid.n_blocks grid in
  let state = Thermal.Grid.steady_state grid ~powers:(Array.make n (100.0 /. float_of_int n)) in
  let hottest = Thermal.Grid.hottest state in
  Alcotest.(check bool) "100W lands in the Fig. 2 band" true (hottest > 350.0 && hottest < 385.0)

let test_grid_hotspot_gradient () =
  let n = Thermal.Grid.n_blocks grid in
  let p = Array.make n 0.0 in
  p.(0) <- 100.0;
  let state = Thermal.Grid.steady_state grid ~powers:p in
  let hot = Thermal.Grid.block_temp grid state ~row:0 ~col:0 in
  let far = Thermal.Grid.block_temp grid state ~row:3 ~col:3 in
  Alcotest.(check bool) "spatial gradient" true (hot -. far > 15.0);
  Alcotest.(check bool) "far corner still above ambient" true (far > 330.0)

let test_grid_zero_power_is_ambient () =
  let n = Thermal.Grid.n_blocks grid in
  let state = Thermal.Grid.steady_state grid ~powers:(Array.make n 0.0) in
  Array.iter (fun t -> check_close ~eps:0.5 "ambient" 323.0 t) state

let test_grid_step_toward_steady () =
  let n = Thermal.Grid.n_blocks grid in
  let powers = Array.make n 5.0 in
  let target = Thermal.Grid.hottest (Thermal.Grid.steady_state grid ~powers) in
  let state = ref (Thermal.Grid.uniform_state grid ~temp_k:323.0) in
  for _ = 1 to 500 do
    state := Thermal.Grid.step grid ~state:!state ~powers ~dt:5.0
  done;
  Alcotest.(check bool) "converges to steady state" true
    (Float.abs (Thermal.Grid.hottest !state -. target) < 1.0)

let test_grid_simulate_shape () =
  let n = Thermal.Grid.n_blocks grid in
  let samples =
    Thermal.Grid.simulate grid
      ~state:(Thermal.Grid.uniform_state grid ~temp_k:330.0)
      ~powers:[| (100.0, Array.make n 6.0) |]
      ~dt:10.0
  in
  Alcotest.(check int) "sample count" 11 (Array.length samples);
  let t_last, _ = samples.(10) in
  check_close "end time" 100.0 t_last

let test_grid_energy_conservation_direction () =
  (* More power in any block raises every temperature. *)
  let n = Thermal.Grid.n_blocks grid in
  let base = Thermal.Grid.steady_state grid ~powers:(Array.make n 3.0) in
  let p = Array.make n 3.0 in
  p.(5) <- 20.0;
  let boosted = Thermal.Grid.steady_state grid ~powers:p in
  Array.iteri
    (fun i t -> Alcotest.(check bool) "monotone in power" true (boosted.(i) >= t -. 1e-6))
    base

let () =
  Alcotest.run "extensions"
    [
      ( "scaled-cells",
        [
          Alcotest.test_case "naming" `Quick test_scaled_naming;
          Alcotest.test_case "logic preserved" `Quick test_scaled_preserves_logic;
          Alcotest.test_case "area and capacitance" `Quick test_scaled_area_and_cap;
          Alcotest.test_case "faster at fixed load" `Quick test_scaled_speeds_fixed_load;
        ] );
      ( "slack",
        [
          Alcotest.test_case "critical path zero slack" `Quick test_slack_critical_path_zero;
          Alcotest.test_case "nonnegative at own target" `Quick test_slack_nonnegative_at_critical_target;
          Alcotest.test_case "tight target negative" `Quick test_slack_tighter_target_negative;
          Alcotest.test_case "critical nodes" `Quick test_slack_critical_nodes;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "monotone in margin" `Quick test_lifetime_monotone_in_margin;
          Alcotest.test_case "extremes" `Quick test_lifetime_extremes;
          Alcotest.test_case "gating extends lifetime" `Quick test_lifetime_gated_outlives_stressed;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "plan validation" `Quick test_rotation_plan_validation;
          Alcotest.test_case "duty blending" `Quick test_rotation_duty_blending;
          Alcotest.test_case "bounded by worst vector" `Quick test_rotation_bounded_by_worst_vector;
          Alcotest.test_case "spreads designed conflict" `Quick test_rotation_spreads_designed_conflict;
          Alcotest.test_case "weighted leakage" `Quick test_rotation_leakage_is_weighted;
          Alcotest.test_case "selection bounds" `Quick test_rotation_select_bounds;
        ] );
      ( "control-point",
        [
          Alcotest.test_case "active logic preserved" `Quick test_control_point_insert_logic_active;
          Alcotest.test_case "forces 1 in standby" `Quick test_control_point_forces_one_in_standby;
          Alcotest.test_case "wins on c17" `Quick test_control_point_wins_on_c17;
          Alcotest.test_case "never hurts (c432)" `Quick test_control_point_never_hurts;
          Alcotest.test_case "NOR rejected" `Quick test_control_point_rejects_nor;
        ] );
      ( "gate-sizing",
        [
          Alcotest.test_case "meets target" `Quick test_sizing_meets_target;
          Alcotest.test_case "drives bounded" `Quick test_sizing_drives_bounded;
          Alcotest.test_case "loose margin no-op" `Quick test_sizing_loose_margin_noop;
        ] );
      ( "dual-vth",
        [
          Alcotest.test_case "delay factor" `Quick test_dual_vth_factor;
          Alcotest.test_case "assignment effects" `Quick test_dual_vth_assignment;
          Alcotest.test_case "critical path stays LVT" `Quick test_dual_vth_critical_path_stays_lvt;
        ] );
      ( "thermal-grid",
        [
          Alcotest.test_case "uniform power band" `Quick test_grid_uniform_matches_band;
          Alcotest.test_case "hotspot gradient" `Quick test_grid_hotspot_gradient;
          Alcotest.test_case "zero power ambient" `Quick test_grid_zero_power_is_ambient;
          Alcotest.test_case "transient convergence" `Quick test_grid_step_toward_steady;
          Alcotest.test_case "simulate shape" `Quick test_grid_simulate_shape;
          Alcotest.test_case "monotone in power" `Quick test_grid_energy_conservation_direction;
        ] );
    ]
