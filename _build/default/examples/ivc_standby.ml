(* Input vector control in practice: pick the standby vector for a block.

   The scenario from the paper's Section 4.3: a combinational block is
   about to be put into standby, and the controller must load a vector
   into the input flip-flops. A pure leakage-driven choice (the classic
   MLV) can pick a vector that stresses the PMOS devices hard; this
   example runs the leakage/NBTI co-optimization and compares the
   decisions.

   Run with: dune exec examples/ivc_standby.exe *)

let () =
  let net = Circuit.Generators.by_name "c880" in
  let aging = Aging.Circuit_aging.default_config ~ras:(1.0, 5.0) ~t_standby:330.0 () in
  let cfg = Flow.Platform.default_config ~aging () in
  let prepared = Flow.Platform.prepare cfg net in
  let tables = Flow.Platform.tables prepared in
  let rng = Physics.Rng.create ~seed:2024 in

  Format.printf "block: %a@.@." Circuit.Netlist.pp_stats (Circuit.Netlist.stats net);

  (* Step 1: the Fig. 7 probability-based search produces a set of
     near-minimum-leakage vectors. *)
  let candidates, stats = Ivc.Mlv.probability_based tables net ~rng () in
  Format.printf "MLV search: %d vectors evaluated in %d rounds, %d MLVs within 4 %% leakage@."
    stats.Ivc.Mlv.evaluations stats.Ivc.Mlv.rounds (List.length candidates);
  let leakage_only = List.hd candidates in
  Format.printf "leakage-optimal vector: %s  (%s)@.@."
    (Flow.Report.vector_string leakage_only.Ivc.Mlv.vector)
    (Physics.Units.si_string ~unit:"A" leakage_only.Ivc.Mlv.leakage);

  (* Step 2: evaluate every MLV's ten-year delay degradation and pick the
     co-optimal one. *)
  let result =
    Ivc.Co_opt.co_optimize aging tables net ~node_sp:(Flow.Platform.node_sp prepared) ~candidates
  in
  Flow.Report.print
    {
      Flow.Report.title = "candidates, ranked by NBTI delay degradation";
      header = [ "vector"; "leakage"; "degradation[%]" ];
      rows =
        List.map
          (fun (c : Ivc.Co_opt.choice) ->
            [
              Flow.Report.vector_string c.Ivc.Co_opt.vector;
              Flow.Report.cell_si ~unit:"A" c.Ivc.Co_opt.leakage;
              Flow.Report.cell_pct c.Ivc.Co_opt.degradation;
            ])
          result.Ivc.Co_opt.all;
    };

  let best = result.Ivc.Co_opt.best in
  Format.printf "co-optimal vector:  %s@." (Flow.Report.vector_string best.Ivc.Co_opt.vector);
  Format.printf "leakage sacrificed: %.2f %% of the pure-MLV minimum@."
    (100.0 *. (best.Ivc.Co_opt.leakage /. leakage_only.Ivc.Mlv.leakage -. 1.0));
  Format.printf "degradation spread across the MLV set: %.3f %% of circuit delay@.@."
    (100.0 *. result.Ivc.Co_opt.spread);

  (* Step 3: context — where does IVC sit between the bounding states? *)
  let worst =
    Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_stressed
  in
  let ideal = Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_relaxed in
  Format.printf
    "ten-year degradation: worst-case standby %.2f %%, chosen MLV %.2f %%, unreachable ideal \
     (internal node control) %.2f %%@."
    (100.0 *. worst.Flow.Platform.degradation)
    (100.0 *. best.Ivc.Co_opt.degradation)
    (100.0 *. ideal.Flow.Platform.degradation);
  Format.printf
    "conclusion (as in the paper): with a cool standby mode, the spread IVC can exploit is small\n\
     - the leakage choice is nearly free, but IVC alone is not a strong NBTI mitigation lever.@."
