(* Quickstart: the library in six steps.

   1. pick a technology, 2. describe how the circuit spends its life
   (active/standby schedule), 3. evaluate the temperature-aware device
   dVth, 4. load a benchmark circuit, 5. run the analysis platform, and
   6. see how much of the degradation a standby technique could save.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Technology: the paper's PTM 90 nm setting (Vdd = 1 V, |Vth| = 220 mV). *)
  let tech = Device.Tech.ptm_90nm in
  let params = Nbti.Rd_model.default_params in
  Format.printf "technology: %a@." Device.Tech.pp tech;
  Format.printf "NBTI model: %a@.@." Nbti.Rd_model.pp_params params;

  (* 2. Operating schedule: 1 part active at 400 K (inputs toggling,
     signal probability 0.5) to 9 parts standby at 330 K with the PMOS
     gate pinned low (worst case). *)
  let schedule =
    Nbti.Schedule.active_standby ~ras:(1.0, 9.0) ~t_active:400.0 ~t_standby:330.0
      ~active_duty:0.5 ~standby_duty:1.0 ()
  in
  Format.printf "schedule: %a@." Nbti.Schedule.pp schedule;

  (* 3. Device-level threshold shift after ten years. *)
  let cond = Nbti.Vth_shift.nominal_pmos tech in
  let dvth =
    Nbti.Vth_shift.dvth params tech cond ~schedule ~time:Physics.Units.ten_years
  in
  Format.printf "ten-year dVth: %.1f mV  (DC envelope: %.1f mV)@."
    (dvth *. 1e3)
    (Nbti.Vth_shift.dvth_dc_ref params tech cond ~time:Physics.Units.ten_years *. 1e3);
  Format.printf "per-gate delay penalty: %.2f %%@.@."
    (100.0 *. Nbti.Degradation.factor tech ~dvth);

  (* 4. A benchmark circuit (regenerated in c432's published size class). *)
  let net = Circuit.Generators.by_name "c432" in
  Format.printf "circuit: %a@.@." Circuit.Netlist.pp_stats (Circuit.Netlist.stats net);

  (* 5. The Fig. 6 platform: signal probabilities, leakage tables, then a
     fresh-vs-aged STA under the worst-case standby state. *)
  let cfg =
    Flow.Platform.default_config
      ~aging:(Aging.Circuit_aging.default_config ~ras:(1.0, 9.0) ~t_standby:330.0 ())
      ()
  in
  let prepared = Flow.Platform.prepare cfg net in
  let worst = Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_stressed in
  Format.printf "fresh critical path: %.1f ps@." (worst.Flow.Platform.fresh_delay *. 1e12);
  Format.printf "after 10 years (worst standby): %.1f ps (+%.2f %%)@."
    (worst.Flow.Platform.aged_delay *. 1e12)
    (100.0 *. worst.Flow.Platform.degradation);
  Format.printf "standby leakage bound: %s, expected active leakage: %s@.@."
    (Physics.Units.si_string ~unit:"A" worst.Flow.Platform.standby_leakage)
    (Physics.Units.si_string ~unit:"A" worst.Flow.Platform.active_leakage);

  (* 6. How much is on the table for standby-state control? *)
  let potential = Flow.Platform.internal_node_potential cfg prepared in
  Format.printf "internal node control: worst %.2f %% -> best %.2f %% (potential %.1f %%)@."
    (100.0 *. potential.Ivc.Internal_node.worst_degradation)
    (100.0 *. potential.Ivc.Internal_node.best_degradation)
    (100.0 *. potential.Ivc.Internal_node.potential)
