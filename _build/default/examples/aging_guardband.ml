(* Timing guardbands across a benchmark suite, with and without variation.

   The design question behind the paper: how much timing margin must a
   signoff flow reserve for ten years of NBTI? This example computes the
   guardband for every benchmark in the suite under the temperature-aware
   model, shows how much the constant-temperature assumption would
   inflate it, and finishes with the variation-aware view (Fig. 12):
   the margin must cover the aged +3-sigma corner, not just the mean.

   Run with: dune exec examples/aging_guardband.exe *)

let () =
  let suite = [ "c17"; "c432"; "c499"; "c880"; "c1355"; "c1908" ] in
  let aging = Aging.Circuit_aging.default_config ~ras:(1.0, 9.0) ~t_standby:330.0 () in

  let rows =
    List.map
      (fun name ->
        let net = Circuit.Generators.by_name name in
        let sp =
          Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
        in
        let analyze config standby =
          Aging.Circuit_aging.analyze config net ~node_sp:sp ~standby ()
        in
        let worst = analyze aging Aging.Circuit_aging.Standby_all_stressed in
        let pessimistic =
          analyze (Aging.Circuit_aging.worst_case_config aging)
            Aging.Circuit_aging.Standby_all_stressed
        in
        let gated = analyze aging Aging.Circuit_aging.Standby_all_relaxed in
        [
          name;
          Flow.Report.cell_ps worst.Aging.Circuit_aging.fresh.Sta.Timing.max_delay;
          Flow.Report.cell_pct worst.Aging.Circuit_aging.degradation;
          Flow.Report.cell_pct pessimistic.Aging.Circuit_aging.degradation;
          Flow.Report.cell_pct gated.Aging.Circuit_aging.degradation;
        ])
      suite
  in
  Flow.Report.print
    {
      Flow.Report.title =
        "ten-year NBTI guardbands (RAS 1:9, 400K active / 330K standby):\n\
         temperature-aware vs constant-400K signoff, and with power gating";
      header = [ "circuit"; "fresh[ps]"; "guardband[%]"; "const-T[%]"; "gated[%]" ];
      rows;
    };

  (* The variation-aware margin on one representative circuit. *)
  let net = Circuit.Generators.by_name "c880" in
  let sp = Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5) in
  let config = Variation.Process_var.default_config ~n_samples:300 aging in
  let study =
    Variation.Process_var.run config net ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed:88)
  in
  let fresh = study.Variation.Process_var.fresh and aged = study.Variation.Process_var.aged in
  let _, fresh_hi = study.Variation.Process_var.fresh_3sigma in
  let _, aged_hi = study.Variation.Process_var.aged_3sigma in
  Format.printf "c880 with 15 mV per-gate Vth sigma (300 Monte-Carlo samples):@.";
  Format.printf "  fresh: mean %.1f ps, +3sigma corner %.1f ps@." (fresh.Physics.Stats.mean *. 1e12)
    (fresh_hi *. 1e12);
  Format.printf "  aged:  mean %.1f ps, +3sigma corner %.1f ps@." (aged.Physics.Stats.mean *. 1e12)
    (aged_hi *. 1e12);
  Format.printf "  variation-aware guardband (aged +3sigma over fresh mean): %.2f %%@."
    (100.0 *. ((aged_hi /. fresh.Physics.Stats.mean) -. 1.0));
  Format.printf "  aging dominates variation (aged -3sigma above fresh +3sigma): %b@."
    (Variation.Process_var.crossover study)
