(* NBTI-aware sleep transistor sizing for a gated block.

   The scenario from the paper's Section 4.4: an ALU block gets a PMOS
   header sleep transistor. The ST must carry the block's worst-case
   switching current at a bounded virtual-rail drop, and because its gate
   sits at 0 through the whole active time it ages faster than anything
   else in the design. This example sizes the ST across the delay-budget
   and threshold-choice space, with and without the end-of-life margin.

   Run with: dune exec examples/sleep_sizing.exe *)

let () =
  let tech = Device.Tech.ptm_90nm in
  let params = Nbti.Rd_model.default_params in
  let block = Circuit.Generators.by_name "c880" in
  Format.printf "gated block: %a@.@." Circuit.Netlist.pp_stats (Circuit.Netlist.stats block);

  (* Worst-case current through the ST. Mutual-exclusion clustering
     (Kao/Anis) keeps the simultaneous switching share of a block's summed
     drive current to a few percent. *)
  let i_on = Sleep.St_sizing.block_on_current tech block ~simultaneity:0.05 in
  Format.printf "worst-case block current: %s (simultaneity 0.05 after clustering)@.@."
    (Physics.Units.si_string ~unit:"A" i_on);

  (* Size across the design space. The ST stress pattern: a server-class
     duty of 3 parts active to 1 part standby. *)
  let schedule = Sleep.St_sizing.st_schedule ~ras:(3.0, 1.0) () in
  let rows =
    List.concat_map
      (fun beta ->
        List.map
          (fun vth_st ->
            let spec = Sleep.St_sizing.make_spec ~tech ~beta ~vth_st () in
            let fresh_wl = Sleep.St_sizing.wl_fresh spec ~i_on in
            let dvth =
              Sleep.St_sizing.dvth_st params spec ~schedule ~time:Physics.Units.ten_years
            in
            let aware_wl = Sleep.St_sizing.wl_nbti_aware spec ~i_on ~dvth in
            [
              Flow.Report.cell_pct beta;
              Printf.sprintf "%.2f" vth_st;
              Printf.sprintf "%.0f" fresh_wl;
              Flow.Report.cell_mv dvth;
              Printf.sprintf "%.0f" aware_wl;
              Flow.Report.cell_pct (Sleep.St_sizing.upsize_fraction spec ~dvth);
              Flow.Report.cell_pct
                (Sleep.St_sizing.st_area_fraction tech block ~wl_st:aware_wl);
            ])
          [ 0.20; 0.30; 0.40 ])
      [ 0.05; 0.03; 0.01 ]
  in
  Flow.Report.print
    {
      Flow.Report.title =
        "PMOS header sizing across delay budget (beta) and ST threshold choice\n\
         (10-year NBTI margin per eq. 31; area as % of block device area - note\n\
         how a 1% budget explodes the ST: the economics behind clustered/DSTN\n\
         sleep networks)";
      header =
        [ "beta[%]"; "VthST[V]"; "W/L fresh"; "ST dVth[mV]"; "W/L aged"; "upsize[%]"; "area[%]" ];
      rows;
    };

  (* The flip side: what the gating buys the block. With the ST off in
     standby no internal PMOS is ever negative-biased. *)
  let aging = Aging.Circuit_aging.default_config ~ras:(3.0, 1.0) ~t_standby:330.0 () in
  let sp = Logic.Signal_prob.analytic block ~input_sp:(Logic.Signal_prob.uniform_inputs block 0.5) in
  let no_st = Sleep.St_insertion.without_st aging block ~node_sp:sp in
  List.iter
    (fun beta ->
      let r =
        Sleep.St_insertion.analyze aging block ~node_sp:sp
          ~style:Sleep.St_insertion.Footer_and_header ~beta ()
      in
      Format.printf
        "beta=%.0f%%: ten-year delay vs fresh = +%.2f%% with ST (no-ST worst case +%.2f%%)@."
        (beta *. 100.0)
        (100.0 *. r.Sleep.St_insertion.total_degradation)
        (100.0 *. no_st))
    [ 0.05; 0.03; 0.01 ]
