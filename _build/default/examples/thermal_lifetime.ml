(* From a measured workload to a lifetime estimate.

   The paper's Fig. 2 motivation, end to end: a processor runs a task set
   with bursty power; the thermal model turns the power trace into
   temperatures; the workload summary extracts the (RAS, T_active,
   T_standby) operating point; and the temperature-aware NBTI model turns
   that into a ten-year delay figure — which a constant-worst-case-
   temperature analysis would overestimate.

   Run with: dune exec examples/thermal_lifetime.exe *)

let () =
  let model = Thermal.Rc_model.default in
  let rng = Physics.Rng.create ~seed:7 in

  (* A day in the life: compute bursts with idle gaps (40 % standby). *)
  let tasks = Thermal.Workload.random_tasks ~rng ~n:40 () in
  let mixed = Thermal.Workload.with_idle ~rng ~idle_power:8.0 ~idle_fraction:0.4 tasks in
  let trace =
    Thermal.Rc_model.simulate model
      ~t0:(Thermal.Rc_model.steady_state model ~power:8.0)
      ~powers:(Thermal.Workload.power_trace mixed) ~dt:20.0
  in
  let temps = Array.map (fun (_, t) -> Physics.Units.celsius_of_kelvin t) trace in
  let lo, hi = Physics.Stats.min_max temps in
  Format.printf "workload: %d tasks + idle gaps, %.1f hours total@." (Array.length tasks)
    (fst trace.(Array.length trace - 1) /. 3600.0);
  Format.printf "die temperature swing: %.0f .. %.0f degC@.@." lo hi;

  (* Extract the paper's model inputs from the trace. *)
  let summary = Thermal.Workload.summarize model ~active_threshold:20.0 mixed in
  let a, s = summary.Thermal.Workload.ras in
  Format.printf "operating point: RAS = %.2f:%.2f, T_active = %.0f K, T_standby = %.0f K@.@." a s
    summary.Thermal.Workload.t_active summary.Thermal.Workload.t_standby;

  (* Lifetime analysis of a datapath block under that operating point. *)
  let net = Circuit.Generators.by_name "c880" in
  let aging =
    Aging.Circuit_aging.default_config ~ras:(a, s)
      ~t_active:summary.Thermal.Workload.t_active
      ~t_standby:summary.Thermal.Workload.t_standby ()
  in
  let sp = Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5) in
  let analyze config =
    (Aging.Circuit_aging.analyze config net ~node_sp:sp
       ~standby:Aging.Circuit_aging.Standby_all_stressed ())
      .Aging.Circuit_aging.degradation
  in
  let aware = analyze aging in
  let pessimistic = analyze (Aging.Circuit_aging.worst_case_config aging) in
  Format.printf "%s ten-year delay degradation:@." net.Circuit.Netlist.name;
  Format.printf "  temperature-aware estimate:       %.2f %%@." (100.0 *. aware);
  Format.printf "  worst-case-temperature estimate:  %.2f %% (%.2fx pessimistic)@."
    (100.0 *. pessimistic) (pessimistic /. aware);

  (* Lifetime-vs-guardband view. *)
  Format.printf "@.guardband needed if the timing margin budget is the degradation itself:@.";
  List.iter
    (fun years ->
      let d = analyze { aging with Aging.Circuit_aging.time = Physics.Units.years years } in
      Format.printf "  %5.1f years -> %.2f %%@." years (100.0 *. d))
    [ 1.0; 3.0; 5.0; 10.0 ]
