examples/aged_signoff.ml: Aging Array Cell Circuit Device Filename Flow Format List Logic Nbti Physics Sta Sys Unix Variation
