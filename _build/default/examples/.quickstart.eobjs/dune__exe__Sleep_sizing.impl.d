examples/sleep_sizing.ml: Aging Circuit Device Flow Format List Logic Nbti Physics Printf Sleep
