examples/quickstart.mli:
