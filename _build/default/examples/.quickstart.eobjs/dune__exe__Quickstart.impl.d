examples/quickstart.ml: Aging Circuit Device Flow Format Ivc Nbti Physics
