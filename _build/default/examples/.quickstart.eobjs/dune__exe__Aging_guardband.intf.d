examples/aging_guardband.mli:
