examples/mitigation_portfolio.mli:
