examples/ivc_standby.ml: Aging Circuit Flow Format Ivc List Physics
