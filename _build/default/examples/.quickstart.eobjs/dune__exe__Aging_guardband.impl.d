examples/aging_guardband.ml: Aging Circuit Flow Format List Logic Physics Sta Variation
