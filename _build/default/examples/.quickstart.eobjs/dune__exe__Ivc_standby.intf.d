examples/ivc_standby.mli:
