examples/mitigation_portfolio.ml: Aging Array Circuit Flow Format Ivc Leakage List Logic Mitigation Physics Printf Sleep Sta
