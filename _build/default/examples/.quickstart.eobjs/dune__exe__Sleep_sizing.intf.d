examples/sleep_sizing.mli:
