examples/aged_signoff.mli:
