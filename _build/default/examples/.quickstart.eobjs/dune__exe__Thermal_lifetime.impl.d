examples/thermal_lifetime.ml: Aging Array Circuit Format List Logic Physics Thermal
