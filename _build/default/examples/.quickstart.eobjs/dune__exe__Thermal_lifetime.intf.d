examples/thermal_lifetime.mli:
