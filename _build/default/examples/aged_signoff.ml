(* An aging-aware signoff hand-off, end to end.

   A physical-design flow consumes three artifacts this library produces:
   the gate-level structural Verilog of the block, a fresh Liberty view,
   and an AGED Liberty view with the mission profile's end-of-life
   threshold shift folded into every arc. This example generates all
   three for a block, then cross-checks the library-level derate against
   the circuit-level analyses at three fidelities: worst-slope STA,
   slope-resolved STA, and analytic SSTA with process variation.

   Run with: dune exec examples/aged_signoff.exe *)

let () =
  let tech = Device.Tech.ptm_90nm in
  let params = Nbti.Rd_model.default_params in
  let net = Circuit.Generators.by_name "c880" in
  let mission =
    Nbti.Schedule.active_standby ~ras:(1.0, 9.0) ~t_active:400.0 ~t_standby:330.0
      ~active_duty:0.5 ~standby_duty:1.0 ()
  in
  let years = 10.0 in
  let time = Physics.Units.years years in

  (* 1. The hand-off artifacts. *)
  let dir = Filename.temp_file "nbti_signoff" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let vpath = Filename.concat dir (net.Circuit.Netlist.name ^ ".v") in
  Circuit.Verilog.write_file net ~path:vpath;
  let fresh_chars = Cell.Characterize.library_characterization tech () in
  let fresh_lib = Filename.concat dir "ptm90_fresh.lib" in
  Cell.Liberty.write_file tech fresh_chars ~path:fresh_lib;
  let aged_lib = Filename.concat dir "ptm90_aged.lib" in
  let aged_text = Cell.Liberty.aged_library params tech ~schedule:mission ~time in
  let oc = open_out aged_lib in
  output_string oc aged_text;
  close_out oc;
  Format.printf "wrote %s (%d gates as structural Verilog)@." vpath (Circuit.Netlist.n_gates net);
  Format.printf "wrote %s and %s@.@." fresh_lib aged_lib;

  (* 2. The library-level derate: one conservative number per cell. *)
  let shift = Cell.Characterize.aged_shift params tech ~schedule:mission ~time in
  Format.printf "mission-profile worst-case dVth: %.1f mV@." (shift *. 1e3);
  let rows =
    List.filter_map
      (fun cell ->
        if List.mem cell.Cell.Stdcell.name [ "INV"; "NAND2"; "NOR2"; "XOR2"; "AOI21" ] then begin
          let fresh = Cell.Characterize.characterize tech cell () in
          let aged = Cell.Characterize.characterize tech cell ~dvth:shift () in
          Some
            [
              cell.Cell.Stdcell.name;
              Flow.Report.cell_ps fresh.Cell.Characterize.delays.(2);
              Flow.Report.cell_ps aged.Cell.Characterize.delays.(2);
              Flow.Report.cell_pct (Cell.Characterize.derate ~fresh ~aged);
            ]
        end
        else None)
      Cell.Stdcell.library
  in
  Flow.Report.print
    {
      Flow.Report.title = "library derates at the mid load point";
      header = [ "cell"; "fresh[ps]"; "aged[ps]"; "derate[%]" ];
      rows;
    };

  (* 3. Circuit-level truth at three fidelities. *)
  let sp = Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5) in
  let aging = Aging.Circuit_aging.default_config ~ras:(1.0, 9.0) ~t_standby:330.0 ~time () in
  let standby = Aging.Circuit_aging.Standby_all_stressed in
  let stage_dvth = Aging.Circuit_aging.stage_dvth_map aging net ~node_sp:sp ~standby in
  let worst_slope =
    let fresh = Sta.Timing.fresh tech net ~temp_k:400.0 () in
    let aged = Sta.Timing.analyze tech net ~temp_k:400.0 ~stage_dvth () in
    Sta.Timing.degradation ~fresh ~aged
  in
  let resolved =
    let fresh = Sta.Timing.analyze_slopes tech net ~temp_k:400.0 ~stage_dvth:Sta.Timing.no_aging () in
    let aged = Sta.Timing.analyze_slopes tech net ~temp_k:400.0 ~stage_dvth () in
    Sta.Timing.slope_degradation ~fresh ~aged
  in
  let ssta_fresh = Variation.Ssta.analyze aging net ~sigma_vth:0.015 ~node_sp:sp ~standby ~aged:false in
  let ssta_aged = Variation.Ssta.analyze aging net ~sigma_vth:0.015 ~node_sp:sp ~standby ~aged:true in
  let corner g = g.Variation.Ssta.mean +. (3.0 *. Variation.Ssta.sigma g) in
  Format.printf "@.circuit-level %g-year views of %s:@." years net.Circuit.Netlist.name;
  Format.printf "  library-derate bound (every PMOS at %.1f mV): %.2f %%@." (shift *. 1e3)
    (100.0 *. Nbti.Degradation.factor tech ~dvth:shift);
  Format.printf "  worst-slope STA, per-gate duties:             %.2f %%@." (100.0 *. worst_slope);
  Format.printf "  slope-resolved STA:                           %.2f %%@." (100.0 *. resolved);
  Format.printf "  SSTA aged +3sigma corner vs fresh mean:       %.2f %%@."
    (100.0 *. ((corner ssta_aged.Variation.Ssta.circuit /. ssta_fresh.Variation.Ssta.circuit.Variation.Ssta.mean) -. 1.0));
  Format.printf
    "@.each refinement hands margin back: the aged-lib bound is safe for any\n\
     workload, the duty-aware STA knows how this block actually idles, the\n\
     slope pass drops the falling-edge pessimism, and SSTA prices variation.@."
