(* The mitigation portfolio: every NBTI lever in the library on one block.

   A designer has a datapath block, a 400 K active / hot standby mission
   profile, and a ten-year life requirement. This example runs each
   technique the paper discusses or motivates — guard-banding (baseline),
   input vector control, MLV rotation, control points, sleep transistor
   insertion, dual-Vth assignment, and NBTI-aware sizing — and compares
   what each buys and what it costs.

   Run with: dune exec examples/mitigation_portfolio.exe *)

let () =
  let net = Circuit.Generators.by_name "c432" in
  let aging = Aging.Circuit_aging.default_config ~t_standby:400.0 () in
  let sp = Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5) in
  let tech = aging.Aging.Circuit_aging.tech in
  let tables = Leakage.Circuit_leakage.build_tables tech net ~temp_k:400.0 in
  let rng = Physics.Rng.create ~seed:99 in
  let n_pi = Circuit.Netlist.n_primary_inputs net in

  Format.printf "block: %a@." Circuit.Netlist.pp_stats (Circuit.Netlist.stats net);
  Format.printf "mission: RAS 1:9, T_active = 400 K, T_standby = 400 K (hot standby), 10 years@.@.";

  let baseline =
    Aging.Circuit_aging.analyze aging net ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  let fresh = baseline.Aging.Circuit_aging.fresh.Sta.Timing.max_delay in
  let pct x = Flow.Report.cell_pct x in
  let rows = ref [] in
  let add name aged_delay cost =
    rows := [ name; pct ((aged_delay /. fresh) -. 1.0); cost ] :: !rows
  in

  (* 0. Do nothing: reserve a guardband. *)
  add "guardband only (worst case)" baseline.Aging.Circuit_aging.aged.Sta.Timing.max_delay
    "timing margin";

  (* 1. IVC: hold the co-optimal minimum-leakage vector. *)
  let ivc, _ = Ivc.Co_opt.run aging tables net ~node_sp:sp ~rng () in
  add "IVC (co-optimal MLV)" ivc.Ivc.Co_opt.best.Ivc.Co_opt.aged_delay "flip-flop mux at PIs";

  (* 2. Rotation among complementary MLVs. *)
  let pool, _ =
    Ivc.Mlv.probability_based tables net ~rng:(Physics.Rng.create ~seed:100) ~tolerance:0.25
      ~max_set:48 ()
  in
  let plan = Ivc.Rotation.select_complementary net ~candidates:pool ~k:6 in
  let rot = Ivc.Rotation.analyze aging net ~node_sp:sp plan () in
  add
    (Printf.sprintf "MLV rotation (%d vectors)" (Array.length plan.Ivc.Rotation.vectors))
    rot.Aging.Circuit_aging.aged.Sta.Timing.max_delay "vector sequencer";

  (* 3. Control points on internal nets. *)
  let cp =
    Ivc.Control_point.evaluate aging net ~standby_vector:(Array.make n_pi true) ~budget:12 ()
  in
  add
    (Printf.sprintf "control points (%d inserted)" cp.Ivc.Control_point.n_control_points)
    cp.Ivc.Control_point.aged_with_cp
    (Printf.sprintf "+%s%% area" (pct cp.Ivc.Control_point.area_overhead));

  (* 4. Sleep transistor insertion (footer+header, NBTI-aware). *)
  let st =
    Sleep.St_insertion.analyze aging net ~node_sp:sp ~style:Sleep.St_insertion.Footer_and_header
      ~beta:0.01 ()
  in
  add "sleep transistors (beta 1%)" st.Sleep.St_insertion.aged_delay_with_st
    "virtual rails + ST area";

  (* 5. Dual-Vth: leakage first, aging second. *)
  let dv =
    Mitigation.Dual_vth.optimize
      (Mitigation.Dual_vth.default_config aging)
      net ~node_sp:sp ~standby:Aging.Circuit_aging.Standby_all_stressed ()
  in
  add
    (Printf.sprintf "dual-Vth (%d/%d HVT)" dv.Mitigation.Dual_vth.n_hvt dv.Mitigation.Dual_vth.n_gates)
    (dv.Mitigation.Dual_vth.fresh_after *. (1.0 +. dv.Mitigation.Dual_vth.degradation_after))
    (Printf.sprintf "%s%% leakage saved"
       (pct
          (1.0
          -. (dv.Mitigation.Dual_vth.active_leakage_after
             /. dv.Mitigation.Dual_vth.active_leakage_before))));

  (* 6. NBTI-aware sizing: buy the margin back with area. *)
  let gs =
    Mitigation.Gate_sizing.optimize aging net ~node_sp:sp
      ~standby:Aging.Circuit_aging.Standby_all_stressed ~margin:0.01 ()
  in
  add "NBTI-aware sizing (1% margin)" gs.Mitigation.Gate_sizing.aged_after
    (Printf.sprintf "+%s%% area" (pct gs.Mitigation.Gate_sizing.area_overhead));

  Flow.Report.print
    {
      Flow.Report.title =
        Printf.sprintf "ten-year delay vs the fresh %.1f ps baseline, by mitigation" (fresh *. 1e12);
      header = [ "technique"; "aged delay vs fresh[%]"; "cost" ];
      rows = List.rev !rows;
    };

  (* Lifetime view: what each standby policy buys at a fixed 3 % margin. *)
  Format.printf "lifetime at a 3 %% guardband:@.";
  List.iter
    (fun (label, standby) ->
      match Aging.Lifetime.solve aging net ~node_sp:sp ~standby ~margin:0.03 () with
      | `Lifetime t -> Format.printf "  %-28s %.2f years@." label (t /. Physics.Units.year)
      | `Never_fails -> Format.printf "  %-28s > 30 years@." label
      | `Fails_immediately -> Format.printf "  %-28s < 1 hour@." label)
    [
      ("worst-case standby", Aging.Circuit_aging.Standby_all_stressed);
      ("power-gated standby", Aging.Circuit_aging.Standby_all_relaxed);
    ]
