(* Bechamel wall-clock suite: one Test.make per experiment kernel, so the
   cost of each table/figure regeneration is tracked. *)

open Bechamel
open Toolkit

let tech = Device.Tech.ptm_90nm
let params = Nbti.Rd_model.default_params
let ten_years = Physics.Units.ten_years
let cond = Nbti.Vth_shift.nominal_pmos tech

let worst_schedule =
  Nbti.Schedule.active_standby ~ras:(1.0, 9.0) ~t_active:400.0 ~t_standby:330.0 ~active_duty:0.5
    ~standby_duty:1.0 ()

let c432 = lazy (Circuit.Generators.by_name "c432")

let c432_sp =
  lazy
    (let net = Lazy.force c432 in
     Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5))

let c432_tables = lazy (Leakage.Circuit_leakage.build_tables tech (Lazy.force c432) ~temp_k:400.0)

(* Kernels, named after the experiment they power. *)

let t_dvth =
  Test.make ~name:"fig3/4+table1: temperature-aware dVth eval"
    (Staged.stage (fun () ->
         ignore (Nbti.Vth_shift.dvth params tech cond ~schedule:worst_schedule ~time:ten_years)))

let t_sn_recursion =
  Test.make ~name:"ablation2: S_n recursion (n=10000)"
    (Staged.stage (fun () -> ignore (Nbti.Ac_stress.s_n_exact ~c:0.5 ~n:10_000)))

let t_trace =
  Test.make ~name:"fig1: within-cycle stress/recovery trace"
    (Staged.stage (fun () ->
         ignore
           (Nbti.Vth_shift.trace_cycles params tech cond ~temp_k:400.0 ~tau:1000.0 ~c:0.5 ~cycles:6
              ~points_per_phase:5)))

let t_thermal =
  Test.make ~name:"fig2: RC thermal simulation of a task set"
    (Staged.stage (fun () ->
         let rng = Physics.Rng.create ~seed:2007 in
         let tasks = Thermal.Workload.random_tasks ~rng ~n:12 () in
         ignore
           (Thermal.Rc_model.simulate Thermal.Rc_model.default ~t0:350.0
              ~powers:(Thermal.Workload.power_trace tasks) ~dt:30.0)))

let t_lut =
  Test.make ~name:"table2: leakage LUT build (NOR3, stack solver)"
    (Staged.stage (fun () ->
         ignore (Cell.Cell_leakage.build_lut tech (Cell.Stdcell.nor_ 3) ~temp_k:400.0)))

let t_generate =
  Test.make ~name:"substrate: c432-profile netlist generation"
    (Staged.stage (fun () ->
         ignore
           (Circuit.Generators.random_dag
              (List.find
                 (fun p -> p.Circuit.Generators.name = "c432")
                 Circuit.Generators.iscas85_profiles))))

let t_logic_sim =
  Test.make ~name:"flow: 64-vector bit-parallel c432 simulation"
    (Staged.stage (fun () ->
         let net = Lazy.force c432 in
         let n_pi = Circuit.Netlist.n_primary_inputs net in
         ignore (Logic.Eval.eval_packed net ~inputs:(Array.make n_pi 0x5555_5555_5555_5555L))))

let t_sp =
  Test.make ~name:"flow: analytic signal probabilities on c432"
    (Staged.stage (fun () ->
         let net = Lazy.force c432 in
         ignore
           (Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5))))

let t_sta =
  Test.make ~name:"table4: fresh STA pass on c432"
    (Staged.stage (fun () -> ignore (Sta.Timing.fresh tech (Lazy.force c432) ~temp_k:400.0 ())))

let t_aging =
  Test.make ~name:"fig5/11+table3/4: full aging analysis of c432"
    (Staged.stage (fun () ->
         let aging = Aging.Circuit_aging.default_config () in
         ignore
           (Aging.Circuit_aging.analyze aging (Lazy.force c432) ~node_sp:(Lazy.force c432_sp)
              ~standby:Aging.Circuit_aging.Standby_all_stressed ())))

let t_mlv =
  Test.make ~name:"table3: one probability-based MLV round on c432"
    (Staged.stage (fun () ->
         ignore
           (Ivc.Mlv.probability_based (Lazy.force c432_tables) (Lazy.force c432)
              ~rng:(Physics.Rng.create ~seed:4) ~pool:16 ~max_rounds:1 ())))

let t_leakage =
  Test.make ~name:"table3: standby leakage evaluation on c432"
    (Staged.stage (fun () ->
         let net = Lazy.force c432 in
         ignore
           (Leakage.Circuit_leakage.standby_leakage (Lazy.force c432_tables) net
              ~vector:(Array.make (Circuit.Netlist.n_primary_inputs net) false))))

let t_variation_sample =
  Test.make ~name:"fig12: one Monte-Carlo variation sample on c432"
    (Staged.stage
       (let rng = Physics.Rng.create ~seed:12 in
        fun () ->
          let aging = Aging.Circuit_aging.default_config () in
          let config = Variation.Process_var.default_config ~n_samples:2 aging in
          ignore
            (Variation.Process_var.run config (Lazy.force c432) ~node_sp:(Lazy.force c432_sp)
               ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng)))

let t_st_sizing =
  Test.make ~name:"fig8/9: NBTI-aware ST sizing point"
    (Staged.stage (fun () ->
         let spec = Sleep.St_sizing.make_spec ~vth_st:0.25 () in
         let dvth =
           Sleep.St_sizing.dvth_st params spec ~schedule:(Sleep.St_sizing.st_schedule ())
             ~time:ten_years
         in
         ignore (Sleep.St_sizing.wl_nbti_aware spec ~i_on:1e-3 ~dvth)))

let t_slope_sta =
  Test.make ~name:"ablation6: slope-resolved STA pass on c432"
    (Staged.stage (fun () ->
         ignore
           (Sta.Timing.analyze_slopes tech (Lazy.force c432) ~temp_k:400.0
              ~stage_dvth:Sta.Timing.no_aging ())))

let t_snm =
  Test.make ~name:"ext8: butterfly SNM extraction (Seevinck)"
    (Staged.stage
       (let cell = Sram.Cell6t.make () in
        fun () ->
          ignore
            (Sram.Cell6t.static_noise_margin cell ~dvth_left:0.02 ~dvth_right:0.0 ~temp_k:400.0
               ~mode:`Read)))

let t_seq_sp =
  Test.make ~name:"ext10: sequential SP fixed point (counter16)"
    (Staged.stage
       (let c = Sequential.counter ~bits:16 in
        fun () -> ignore (Sequential.steady_state_sp c ~input_sp:[| 0.5 |] ())))

let t_activity =
  Test.make ~name:"ext9: 64-pair activity estimation on c432"
    (Staged.stage
       (let rng = Physics.Rng.create ~seed:9 in
        fun () ->
          let net = Lazy.force c432 in
          ignore
            (Logic.Activity.monte_carlo net ~rng
               ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5) ~n_pairs:64)))

let t_grid =
  Test.make ~name:"ext7: 4x4 thermal grid steady state"
    (Staged.stage
       (let g = Thermal.Grid.create () in
        let p = Array.make (Thermal.Grid.n_blocks g) 6.0 in
        fun () -> ignore (Thermal.Grid.steady_state g ~powers:p)))

let t_liberty =
  Test.make ~name:"interop: Liberty render of the full library"
    (Staged.stage (fun () ->
         ignore (Cell.Liberty.to_string tech (Cell.Characterize.library_characterization tech ()))))

let t_verilog =
  Test.make ~name:"interop: Verilog render of c432"
    (Staged.stage (fun () -> ignore (Circuit.Verilog.to_string (Lazy.force c432))))

let tests =
  Test.make_grouped ~name:"nbti-repro"
    [
      t_dvth; t_sn_recursion; t_trace; t_thermal; t_lut; t_generate; t_logic_sim; t_sp; t_sta;
      t_aging; t_mlv; t_leakage; t_variation_sample; t_st_sizing; t_slope_sta; t_snm; t_seq_sp;
      t_activity; t_grid; t_liberty; t_verilog;
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let per_instance = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances per_instance

let run () =
  Format.printf "Bechamel wall-clock suite (monotonic clock, ns/run):@.@.";
  let results = benchmark () in
  Hashtbl.iter
    (fun measure by_test ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] -> Format.printf "  %-55s %12.1f ns/run@." name est
            | _ -> Format.printf "  %-55s (no estimate)@." name)
          by_test)
    results;
  Format.printf "@."

(* --- machine-readable output (BENCH_PR8.json) --- *)

let ns_estimates () =
  let results = benchmark () in
  let acc = ref [] in
  Hashtbl.iter
    (fun measure by_test ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] -> acc := (name, est) :: !acc
            | _ -> ())
          by_test)
    results;
  List.sort compare !acc

let time_it f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let bench_samples () =
  match Option.bind (Sys.getenv_opt "NBTI_BENCH_SAMPLES") int_of_string_opt with
  | Some n when n >= 2 -> n
  | _ -> 500

type parallel_case = {
  case_domains : int;
  variation_s : float;
  signal_prob_s : float;
  mlv_s : float;
}

(* Best-of-N wall time: the compiled hot paths finish a 500-sample c432
   study in milliseconds, so single-shot timings are scheduler noise;
   the min over a few runs is what the scaling gate compares. *)
let best_of n f =
  let best = ref infinity and last = ref None in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some v
  done;
  (Option.get !last, !best)

(* The acceptance workload: the 500-sample c432 variation study plus the
   two other parallel hot paths, each timed at 1, 2 and 4 domains against
   a dedicated pool, with the results compared structurally across the
   domain counts — the speedup claim is only meaningful if the outputs
   are bit-identical. NBTI_BENCH_SAMPLES overrides the sample count for
   quick runs. *)
let parallel_cases () =
  let net = Lazy.force c432 in
  let sp = Lazy.force c432_sp in
  let tables = Lazy.force c432_tables in
  let input_sp = Logic.Signal_prob.uniform_inputs net 0.5 in
  let n_samples = bench_samples () in
  let aging = Aging.Circuit_aging.default_config () in
  let var_config = Variation.Process_var.default_config ~n_samples aging in
  let one pool =
    let study, variation_s =
      best_of 3 (fun () ->
          Variation.Process_var.run ~pool var_config net ~node_sp:sp
            ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed:12))
    in
    let mc, signal_prob_s =
      best_of 3 (fun () ->
          Logic.Signal_prob.monte_carlo ~pool net ~rng:(Physics.Rng.create ~seed:7) ~input_sp
            ~n_vectors:16384)
    in
    let mlv, mlv_s =
      time_it (fun () ->
          Ivc.Mlv.probability_based ~par:pool tables net ~rng:(Physics.Rng.create ~seed:4) ())
    in
    ( (study.Variation.Process_var.samples, mc, fst mlv),
      { case_domains = Parallel.Pool.domains pool; variation_s; signal_prob_s; mlv_s } )
  in
  let cases = List.map (fun domains -> Parallel.Pool.with_pool ~domains one) [ 1; 2; 4 ] in
  let bit_identical =
    match List.map fst cases with [] -> true | r1 :: rest -> List.for_all (( = ) r1) rest
  in
  (n_samples, List.map snd cases, bit_identical)

(* --- PR6: parallel-scaling gate --- *)

type scaling_verdict = {
  host_cores : int;
  speedup2 : float;
  speedup4 : float;
  gate_enforced : bool;  (* true iff the host can physically show scaling *)
  gate_passed : bool;
  gate_detail : string;
  measured_recommended_domains : int;  (* fastest domain count on this host *)
}

(* The PR3 pathology this PR fixes: 2 domains ran the variation study at
   0.37x of 1 domain (0.22x at 4). On a multicore host the gate demands
   real scaling (>= 1.5x at 2 domains, no regression from 2 to 4). A
   single-core host cannot show a speedup no matter how good the
   runtime is — and it pays a real oversubscription tax: the sampler's
   RNG draws allocate (boxed int64 state, Box-Muller spare), so minor
   collections are frequent, and each one is a stop-the-world sync
   across every domain time-slicing the one core. That tax is
   proportional to work, not a fixed cost, so the floor is calibrated
   to what a healthy pool measures under oversubscription (~0.55-0.75x
   at 2 domains, ~0.35-0.4x at 4) with headroom over the PR3 pathology:
   >= 0.50x at 2 domains and >= 0.30x at 4, recorded as not-enforced
   so a multicore CI host still applies the strict gate. *)
let scaling_verdict cases =
  let host_cores = Domain.recommended_domain_count () in
  let time_at d =
    match List.find_opt (fun c -> c.case_domains = d) cases with
    | Some c -> c.variation_s
    | None -> invalid_arg "scaling_verdict: missing domain case"
  in
  let t1 = time_at 1 in
  let speedup d = t1 /. Float.max 1e-12 (time_at d) in
  let speedup2 = speedup 2 and speedup4 = speedup 4 in
  let fastest =
    List.fold_left
      (fun best c -> if c.variation_s < (time_at best) then c.case_domains else best)
      1 cases
  in
  let gate_enforced = host_cores >= 2 in
  let gate_passed, gate_detail =
    if gate_enforced then begin
      let pass2 = speedup2 >= 1.5 in
      let monotone = host_cores < 4 || speedup4 >= speedup2 in
      ( pass2 && monotone,
        Printf.sprintf
          "multicore host (%d cores): require speedup2 >= 1.5 (got %.2f) and, with >= 4 cores, \
           speedup4 >= speedup2 (got %.2f)"
          host_cores speedup2 speedup4 )
    end
    else begin
      let pass = speedup2 >= 0.50 && speedup4 >= 0.30 in
      ( pass,
        Printf.sprintf
          "single-core host: strict >= 1.5x gate not enforceable; oversubscription floor \
           speedup2 >= 0.50 (got %.2f) and speedup4 >= 0.30 (got %.2f)"
          speedup2 speedup4 )
    end
  in
  {
    host_cores;
    speedup2;
    speedup4;
    gate_enforced;
    gate_passed;
    gate_detail;
    measured_recommended_domains = fastest;
  }

(* --- PR6: compiled single-thread speedups vs the PR3 boxed baselines --- *)

(* ns/run estimates frozen from BENCH_PR3.json for the two kernels the
   compiled core must beat by >= 3x single-threaded. *)
let pr3_variation_sample_ns = 1_740_786.0
let pr3_fresh_sta_ns = 343_619.2

let min_time_ns ~repeats ~batch f =
  for _ = 1 to 3 do
    f ()
  done;
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best /. float_of_int batch *. 1e9

type speedup_case = { kernel : string; pr3_ns : float; pr6_ns : float; speedup : float }

let speedups_vs_pr3 () =
  Parallel.Pool.with_pool ~domains:1 @@ fun pool ->
  let net = Lazy.force c432 in
  let sp = Lazy.force c432_sp in
  let aging = Aging.Circuit_aging.default_config () in
  let var_config = Variation.Process_var.default_config ~n_samples:2 aging in
  let rng = Physics.Rng.create ~seed:12 in
  (* The exact shapes of the PR3 bechamel kernels, now running on the
     compiled backends: the whole Process_var.run call (2 samples, as in
     the PR3 kernel) and the fresh STA pass including the cache lookups
     a steady-state caller pays. *)
  let variation_ns =
    min_time_ns ~repeats:15 ~batch:20 (fun () ->
        ignore
          (Variation.Process_var.run ~pool var_config net ~node_sp:sp
             ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng))
  in
  let fresh_sta_ns =
    min_time_ns ~repeats:15 ~batch:100 (fun () ->
        let a = Compiled.Arena.get net in
        let tm = Compiled.Timing.get a ~tech ~temp_k:400.0 () in
        ignore (Compiled.Timing.fresh_result tm))
  in
  let case kernel pr3_ns pr6_ns =
    { kernel; pr3_ns; pr6_ns; speedup = pr3_ns /. Float.max 1e-3 pr6_ns }
  in
  [
    case "fig12: one Monte-Carlo variation sample on c432"
      (pr3_variation_sample_ns /. 2.0) (variation_ns /. 2.0);
    case "table4: fresh STA pass on c432" pr3_fresh_sta_ns fresh_sta_ns;
  ]

(* --- PR7: calibration throughput --- *)

type calibration_case = {
  cal_domains : int;
  cal_wall_s : float;
  cal_samples_per_s : float;  (* retained posterior draws per second *)
}

(* The calibrate wire op's compute kernel: 4 adaptive MH chains over the
   standard 54-point synthetic campaign. Chains are the unit of
   parallelism (chunk 1), so 4 domains is the saturation point and the
   posterior must be bit-identical at every domain count. *)
let calibration_cases () =
  let data = Calibrate.Synth.generate ~seed:7 () in
  let config = Calibrate.Engine.default_config in
  let total = config.Calibrate.Engine.n_chains * config.Calibrate.Engine.samples in
  let run domains =
    Parallel.Pool.with_pool ~domains @@ fun pool ->
    ignore (Calibrate.Engine.run ~pool config data);
    let best = ref infinity and posterior = ref None in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      let p = Calibrate.Engine.run ~pool config data in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      if !posterior = None then posterior := Some p
    done;
    (!best, Option.get !posterior)
  in
  let raw = List.map (fun d -> (d, run d)) [ 1; 2; 4 ] in
  let draws (_, (_, p)) = p.Calibrate.Posterior.draws in
  let head = List.hd raw in
  let bit_identical = List.for_all (fun c -> draws c = draws head) raw in
  ( List.map
      (fun (d, (wall, _)) ->
        {
          cal_domains = d;
          cal_wall_s = wall;
          cal_samples_per_s = float_of_int total /. Float.max 1e-12 wall;
        })
      raw,
    bit_identical )

type tracing_overhead = {
  off_s : float;
  on_s : float;
  overhead_pct : float;
  overhead_s : float;
  prop_s : float;  (* collector installed AND a distributed-trace context active *)
  prop_pct : float;
  prop_overhead_s : float;
}

(* Minimum over repeated batched runs. "off" is the instrumented build
   with no collector installed (the state every non-traced run pays
   for); "on" installs a live collector, which additionally records the
   aging/STA spans. The acceptance bound is on the *installed* cost —
   the disabled cost is a single atomic load and sits inside measurement
   noise. The compiled core pushed the memoized analyze hot path from
   ~1 ms down to ~20 us, so a purely relative bound would gate a
   handful of ~0.5 us span records against a microsecond denominator;
   the gate therefore passes on either < 3% relative overhead or < 5 us
   absolute overhead per analyze (a few spans' worth). *)
let tracing_overhead () =
  let net = Lazy.force c432 in
  let sp = Lazy.force c432_sp in
  let aging = Aging.Circuit_aging.default_config () in
  let run () =
    ignore
      (Aging.Circuit_aging.analyze aging net ~node_sp:sp
         ~standby:Aging.Circuit_aging.Standby_all_stressed ())
  in
  let min_time ~repeats ~batch =
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do
        run ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best /. float_of_int batch
  in
  for _ = 1 to 5 do
    run ()
  done;
  let repeats = 15 and batch = 25 in
  let off_s = min_time ~repeats ~batch in
  let collector = Obs.Trace.create () in
  Obs.Trace.install collector;
  let on_s =
    Fun.protect ~finally:Obs.Trace.uninstall (fun () -> min_time ~repeats ~batch)
  in
  (* Propagation on: same collector, plus an installed trace context —
     the state a request handled by the server/router runs under. Root
     spans now parent onto the remote span and carry the trace id, which
     is the extra cost context propagation adds per span. *)
  Obs.Trace.install collector;
  let prop_s =
    Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
        Obs.Ctx.with_trace
          { Obs.Ctx.trace_id = Obs.Trace.new_trace_id (); parent_span = Some "deadbeefcafe0123" }
          (fun () -> min_time ~repeats ~batch))
  in
  let pct v = (v -. off_s) /. Float.max 1e-12 off_s *. 100.0 in
  {
    off_s;
    on_s;
    overhead_pct = pct on_s;
    overhead_s = on_s -. off_s;
    prop_s;
    prop_pct = pct prop_s;
    prop_overhead_s = prop_s -. off_s;
  }

(* The 3%-or-5us acceptance bound, applied both to a bare collector and
   to collector-plus-propagation-context (the fleet configuration).
   Returns false on failure (caller exits). *)
let check_tracing_gate tr =
  Format.printf "  tracing: analyze %.3f ms off, %.3f ms on (%+.2f%%, %+.1f us)@."
    (tr.off_s *. 1e3) (tr.on_s *. 1e3) tr.overhead_pct (tr.overhead_s *. 1e6);
  Format.printf "  tracing: analyze %.3f ms with propagation context (%+.2f%%, %+.1f us)@."
    (tr.prop_s *. 1e3) tr.prop_pct (tr.prop_overhead_s *. 1e6);
  let ok = ref true in
  if tr.overhead_pct >= 3.0 && tr.overhead_s >= 5e-6 then begin
    Format.eprintf
      "BENCH FAILURE: tracing overhead %.2f%% >= 3%% and %.1f us >= 5 us on the analyze hot \
       path@."
      tr.overhead_pct (tr.overhead_s *. 1e6);
    ok := false
  end;
  if tr.prop_pct >= 3.0 && tr.prop_overhead_s >= 5e-6 then begin
    Format.eprintf
      "BENCH FAILURE: propagation overhead %.2f%% >= 3%% and %.1f us >= 5 us on the analyze \
       hot path@."
      tr.prop_pct (tr.prop_overhead_s *. 1e6);
    ok := false
  end;
  !ok

(* --- PR8: GC pressure on the Monte-Carlo variation hot path --- *)

type gc_pressure = { gc_samples : int; minor_words_per_sample : float }

(* Gc.minor_words around the variation study at 1 domain: the pool runs
   all work on the calling domain there (workers = domains - 1), so the
   counter sees every allocation of the hot path. The measured run is
   the exact acceptance workload — same seed, same sample count — so
   the measurement cannot perturb any RNG stream; a warm-up run first
   keeps lazy/cache initialization off the bill. *)
let variation_gc_pressure () =
  Parallel.Pool.with_pool ~domains:1 @@ fun pool ->
  let net = Lazy.force c432 in
  let sp = Lazy.force c432_sp in
  let n_samples = bench_samples () in
  let aging = Aging.Circuit_aging.default_config () in
  let var_config = Variation.Process_var.default_config ~n_samples aging in
  let run () =
    ignore
      (Variation.Process_var.run ~pool var_config net ~node_sp:sp
         ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed:12))
  in
  run ();
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  run ();
  let w1 = Gc.minor_words () in
  { gc_samples = n_samples; minor_words_per_sample = (w1 -. w0) /. float_of_int n_samples }

(* --- PR8: incremental single-PI-flip re-analysis gate --- *)

type incremental_case = {
  inc_circuit : string;
  inc_gates : int;
  full_pass_s : float;  (* one full compiled aging analysis, memo defeated *)
  flip_s : float;  (* mean per single-PI-flip session re-analysis *)
  inc_speedup : float;
  inc_cone_frac : float;  (* mean visited cone as a fraction of the arena *)
  inc_bit_identical : bool;  (* vs full recompute, at 1/2/4 domains *)
}

let net_name (net : Circuit.Netlist.t) = net.Circuit.Netlist.name

(* The 10^4-gate generated DAG from the compiled-core acceptance suite. *)
let dag10k =
  lazy
    (Circuit.Generators.random_dag
       { Circuit.Generators.name = "dag10k"; n_pi = 64; n_po = 32; n_gates = 10_000; seed = 42 })

let incremental_ctx_of net =
  let config = Aging.Circuit_aging.default_config () in
  let tables =
    Leakage.Circuit_leakage.build_tables config.Aging.Circuit_aging.tech net ~temp_k:400.0
  in
  let node_sp =
    Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
  in
  let ctx =
    Compiled.Incremental.Analysis.ctx (Compiled.Arena.get net)
      ~currents:(Leakage.Circuit_leakage.node_currents tables net)
      ~node_sp ~params:config.Aging.Circuit_aging.params ~tech:config.Aging.Circuit_aging.tech
      ~schedule:config.Aging.Circuit_aging.schedule ~time:config.Aging.Circuit_aging.time ()
  in
  (ctx, tables, config, node_sp)

(* One incremental case. [full_pass_s] is the per-call minimum of the
   full compiled aging analysis over a rotation of 20 distinct standby
   vectors — more than the 16-entry shape memo holds, so every call
   recomputes every gate's duty, R-D shift and aged delay from scratch:
   exactly what an edit-heavy caller pays without sessions. [flip_s] is
   the mean cost of one single-PI-flip re-analysis (flip + cone
   propagation + leakage/aged/max-dvth folds) in a resident session,
   over rounds that flip each probed PI twice so every round ends where
   it started; best round wins. Bit-identity is checked separately at
   1/2/4 domains: the same edited vectors, pushed through per-chunk
   sessions exactly as Ivc.Co_opt does, must reproduce the full
   Circuit_aging.analyze + standby_leakage oracle bit-for-bit at every
   domain count. *)
let incremental_case net =
  let name = net_name net in
  let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
  let ctx, tables, config, node_sp = incremental_ctx_of net in
  let rng = Physics.Rng.create ~seed:88 in
  let full_vectors =
    Array.init 20 (fun _ -> Array.init n_pi (fun _ -> Physics.Rng.bool rng))
  in
  let full_pass_s = ref infinity in
  for _round = 1 to 3 do
    Array.iter
      (fun v ->
        let t0 = Unix.gettimeofday () in
        ignore
          (Aging.Circuit_aging.analyze config net ~node_sp
             ~standby:(Aging.Circuit_aging.Standby_vector v) ());
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !full_pass_s then full_pass_s := dt)
      full_vectors
  done;
  let s = Compiled.Incremental.Analysis.session ctx in
  Compiled.Incremental.Analysis.set_vector s (Array.make n_pi false);
  let flips = min n_pi 50 in
  let flip_s = ref infinity in
  for _round = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    for _pass = 1 to 2 do
      for k = 0 to flips - 1 do
        Compiled.Incremental.Analysis.flip_pi s k
      done
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int (2 * flips) in
    if dt < !flip_s then flip_s := dt
  done;
  let st = Compiled.Incremental.Analysis.stats s in
  let inc_cone_frac =
    Compiled.Incremental.cone_size st
    /. float_of_int (Compiled.Incremental.Analysis.n_nodes s)
  in
  (* Bit-identity workload: a dozen standby vectors, each one flip from
     the previous, evaluated through chunked sessions at each domain
     count and against the full-pass oracle. *)
  let rng = Physics.Rng.create ~seed:89 in
  let cur = Array.make n_pi false in
  let vectors =
    Array.init 12 (fun _ ->
        let k = Physics.Rng.int rng n_pi in
        cur.(k) <- not cur.(k);
        Array.copy cur)
  in
  let bits = Int64.bits_of_float in
  let oracle =
    Array.map
      (fun v ->
        let r =
          Aging.Circuit_aging.analyze config net ~node_sp
            ~standby:(Aging.Circuit_aging.Standby_vector v) ()
        in
        ( bits r.Aging.Circuit_aging.aged.Sta.Timing.max_delay,
          bits r.Aging.Circuit_aging.degradation,
          bits r.Aging.Circuit_aging.max_dvth,
          bits (Leakage.Circuit_leakage.standby_leakage tables net ~vector:v) ))
      vectors
  in
  let at_domains domains =
    Parallel.Pool.with_pool ~domains @@ fun p ->
    let n = Array.length vectors in
    let out = Array.make n (0L, 0L, 0L, 0L) in
    let chunk = max 1 ((n + Parallel.Pool.domains p - 1) / Parallel.Pool.domains p) in
    Parallel.Pool.iter_ranges p ~chunk n (fun lo hi ->
        let s = Compiled.Incremental.Analysis.session ctx in
        for i = lo to hi - 1 do
          Compiled.Incremental.Analysis.set_vector s vectors.(i);
          out.(i) <-
            ( bits (Compiled.Incremental.Analysis.aged_delay s),
              bits (Compiled.Incremental.Analysis.degradation s),
              bits (Compiled.Incremental.Analysis.max_dvth s),
              bits (Compiled.Incremental.Analysis.leakage s) )
        done);
    out
  in
  let inc_bit_identical = List.for_all (fun d -> at_domains d = oracle) [ 1; 2; 4 ] in
  {
    inc_circuit = name;
    inc_gates = Circuit.Netlist.n_gates net;
    full_pass_s = !full_pass_s;
    flip_s = !flip_s;
    inc_speedup = !full_pass_s /. Float.max 1e-12 !flip_s;
    inc_cone_frac;
    inc_bit_identical;
  }

let incremental_cases () =
  List.map incremental_case [ Circuit.Generators.by_name "c7552"; Lazy.force dag10k ]

let check_incremental_gates cases =
  let ok = ref true in
  List.iter
    (fun c ->
      Format.printf
        "  incremental %-8s (%d gates): full pass %8.3f ms, single-PI flip %8.1f us (x%.0f, \
         cone %.2f%%), bit-identical at 1/2/4 domains: %b%s@."
        c.inc_circuit c.inc_gates (c.full_pass_s *. 1e3) (c.flip_s *. 1e6) c.inc_speedup
        (c.inc_cone_frac *. 100.0) c.inc_bit_identical
        (if c.inc_speedup >= 10.0 && c.inc_bit_identical then "" else "  FAIL");
      if c.inc_speedup < 10.0 then begin
        Format.eprintf "BENCH FAILURE: incremental %s only x%.1f vs full pass (need >= 10x)@."
          c.inc_circuit c.inc_speedup;
        ok := false
      end;
      if not c.inc_bit_identical then begin
        Format.eprintf
          "BENCH FAILURE: incremental %s differs from full recompute across domain counts@."
          c.inc_circuit;
        ok := false
      end)
    cases;
  !ok

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char b '\\';
        Buffer.add_char b c
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let print_cases cases base =
  List.iter
    (fun c ->
      Format.printf "  %d domain(s): variation %.3f s (x%.2f), signal-prob %.3f s, mlv %.3f s@."
        c.case_domains c.variation_s
        (base.variation_s /. Float.max 1e-12 c.variation_s)
        c.signal_prob_s c.mlv_s)
    cases

(* Shared gate checks: print verdicts, return true when everything the
   host can enforce passed. *)
let check_gates ~bit_identical ~(verdict : scaling_verdict) ~speedups =
  let ok = ref true in
  if not bit_identical then begin
    Format.eprintf "BENCH FAILURE: parallel results differ across domain counts@.";
    ok := false
  end;
  Format.printf "  scaling gate (%s): %s@."
    (if verdict.gate_enforced then "enforced" else "single-core floor")
    (if verdict.gate_passed then "pass" else "FAIL");
  Format.printf "    %s@." verdict.gate_detail;
  Format.printf "    fastest domain count on this host: %d@."
    verdict.measured_recommended_domains;
  if not verdict.gate_passed then begin
    Format.eprintf "BENCH FAILURE: %s@." verdict.gate_detail;
    ok := false
  end;
  List.iter
    (fun s ->
      Format.printf "  vs PR3 %-50s %10.0f -> %8.0f ns (x%.1f)%s@." s.kernel s.pr3_ns s.pr6_ns
        s.speedup
        (if s.speedup >= 3.0 then "" else "  FAIL (< 3x)");
      if s.speedup < 3.0 then begin
        Format.eprintf "BENCH FAILURE: compiled %s only x%.2f vs PR3 (need >= 3x)@." s.kernel
          s.speedup;
        ok := false
      end)
    speedups;
  !ok

let run_json ~path =
  Format.printf "Bechamel estimates (this takes a few seconds per kernel)...@.";
  let estimates = ns_estimates () in
  (* Settle the heap after bechamel's allocation churn so the scaling
     measurement is not paying its garbage down. *)
  Gc.compact ();
  Format.printf "Parallel section: c432 hot paths at 1/2/4 domains...@.";
  let n_samples, cases, bit_identical = parallel_cases () in
  let verdict = scaling_verdict cases in
  Format.printf "Compiled-core section: single-thread kernels vs PR3 baselines...@.";
  let speedups = speedups_vs_pr3 () in
  Format.printf "Calibration section: 4-chain posterior at 1/2/4 domains...@.";
  let cal_cases, cal_bit_identical = calibration_cases () in
  Format.printf "Incremental section: single-PI-flip re-analysis on c7552 and dag10k...@.";
  let inc_cases = incremental_cases () in
  Format.printf "GC section: minor words per Monte-Carlo variation sample...@.";
  let gc = variation_gc_pressure () in
  Format.printf "Tracing section: analyze hot path with collector off vs. on...@.";
  let tr = tracing_overhead () in
  let base =
    match cases with
    | c :: _ -> c
    | [] -> assert false
  in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"schema\": \"nbti-bench/pr8\",\n";
  Buffer.add_string b (Printf.sprintf "  \"host_cores\": %d,\n" verdict.host_cores);
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domains\": %d,\n" verdict.measured_recommended_domains);
  Buffer.add_string b (Printf.sprintf "  \"variation_samples\": %d,\n" n_samples);
  Buffer.add_string b "  \"ns_per_run\": {\n";
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string b "    ";
      add_json_string b name;
      Buffer.add_string b (Printf.sprintf ": %.1f%s\n" est (if i = List.length estimates - 1 then "" else ",")))
    estimates;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"speedup_vs_pr3\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b "    { \"kernel\": ";
      add_json_string b s.kernel;
      Buffer.add_string b
        (Printf.sprintf ", \"pr3_ns\": %.1f, \"pr6_ns\": %.1f, \"speedup\": %.2f }%s\n" s.pr3_ns
           s.pr6_ns s.speedup
           (if i = List.length speedups - 1 then "" else ",")))
    speedups;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"parallel\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"bit_identical_across_domain_counts\": %b,\n" bit_identical);
  Buffer.add_string b
    (Printf.sprintf "    \"scaling_gate\": { \"enforced\": %b, \"passed\": %b, \"detail\": "
       verdict.gate_enforced verdict.gate_passed);
  add_json_string b verdict.gate_detail;
  Buffer.add_string b " },\n";
  Buffer.add_string b "    \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "      { \"domains\": %d, \"variation_s\": %.6f, \"signal_prob_s\": %.6f, \
            \"mlv_s\": %.6f, \"variation_speedup_vs_1\": %.3f }%s\n"
           c.case_domains c.variation_s c.signal_prob_s c.mlv_s
           (base.variation_s /. Float.max 1e-12 c.variation_s)
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "    ]\n  },\n";
  Buffer.add_string b "  \"calibration\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"bit_identical_across_domain_counts\": %b,\n" cal_bit_identical);
  Buffer.add_string b "    \"cases\": [\n";
  (let cal_base = List.hd cal_cases in
   List.iteri
     (fun i c ->
       Buffer.add_string b
         (Printf.sprintf
            "      { \"domains\": %d, \"wall_s\": %.6f, \"posterior_samples_per_s\": %.1f, \
             \"speedup_vs_1\": %.3f }%s\n"
            c.cal_domains c.cal_wall_s c.cal_samples_per_s
            (cal_base.cal_wall_s /. Float.max 1e-12 c.cal_wall_s)
            (if i = List.length cal_cases - 1 then "" else ",")))
     cal_cases);
  Buffer.add_string b "    ]\n  },\n";
  Buffer.add_string b "  \"incremental\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"enabled\": %b,\n    \"cases\": [\n" (Compiled.Incremental.enabled ()));
  List.iteri
    (fun i c ->
      Buffer.add_string b "      { \"circuit\": ";
      add_json_string b c.inc_circuit;
      Buffer.add_string b
        (Printf.sprintf
           ", \"gates\": %d, \"full_pass_s\": %.9f, \"flip_s\": %.9f, \"speedup\": %.1f, \
            \"cone_frac\": %.5f, \"bit_identical_at_1_2_4_domains\": %b }%s\n"
           c.inc_gates c.full_pass_s c.flip_s c.inc_speedup c.inc_cone_frac c.inc_bit_identical
           (if i = List.length inc_cases - 1 then "" else ",")))
    inc_cases;
  Buffer.add_string b "    ]\n  },\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"variation_gc\": { \"samples\": %d, \"minor_words_per_sample\": %.1f },\n"
       gc.gc_samples gc.minor_words_per_sample);
  Buffer.add_string b "  \"tracing\": {\n";
  Buffer.add_string b
    (Printf.sprintf
       "    \"analyze_off_s\": %.9f,\n    \"analyze_on_s\": %.9f,\n    \"overhead_pct\": %.3f,\n\
       \    \"overhead_s\": %.9f,\n    \"analyze_propagation_s\": %.9f,\n\
       \    \"propagation_pct\": %.3f,\n    \"propagation_s\": %.9f\n"
       tr.off_s tr.on_s tr.overhead_pct tr.overhead_s tr.prop_s tr.prop_pct tr.prop_overhead_s);
  Buffer.add_string b "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Format.printf "@.%s written:@." path;
  print_cases cases base;
  Format.printf "  results bit-identical across domain counts: %b@." bit_identical;
  List.iter
    (fun c ->
      Format.printf "  calibration at %d domain(s): %.3f s, %.0f posterior samples/s@."
        c.cal_domains c.cal_wall_s c.cal_samples_per_s)
    cal_cases;
  Format.printf "  calibration bit-identical across domain counts: %b@." cal_bit_identical;
  let gates_ok = check_gates ~bit_identical ~verdict ~speedups in
  let gates_ok =
    if cal_bit_identical then gates_ok
    else begin
      Format.eprintf "BENCH FAILURE: calibration posteriors differ across domain counts@.";
      false
    end
  in
  let gates_ok = check_incremental_gates inc_cases && gates_ok in
  Format.printf "  variation GC: %.0f minor words per sample (%d samples)@."
    gc.minor_words_per_sample gc.gc_samples;
  let tracing_ok = check_tracing_gate tr in
  if not (gates_ok && tracing_ok) then exit 1

(* The fast subset for `make scaling-gate`: parallel cases + the compiled
   speedup kernels, no bechamel estimates, no tracing section. *)
let run_scaling_gate () =
  Format.printf "Scaling gate: c432 hot paths at 1/2/4 domains...@.";
  let _, cases, bit_identical = parallel_cases () in
  let verdict = scaling_verdict cases in
  let speedups = speedups_vs_pr3 () in
  let base = match cases with c :: _ -> c | [] -> assert false in
  print_cases cases base;
  Format.printf "  results bit-identical across domain counts: %b@." bit_identical;
  if not (check_gates ~bit_identical ~verdict ~speedups) then exit 1;
  Format.printf "scaling gate: OK@."

(* The fast subset for `make incremental-gate`: just the single-PI-flip
   speedup and 1/2/4-domain bit-identity section; non-zero exit on any
   failure. A deployment that disabled sessions via NBTI_INCREMENTAL is
   caught here rather than silently benching the full-pass path. *)
let run_incremental_gate () =
  if not (Compiled.Incremental.enabled ()) then begin
    Format.eprintf "BENCH FAILURE: incremental sessions disabled (NBTI_INCREMENTAL)@.";
    exit 1
  end;
  Format.printf "Incremental gate: single-PI-flip re-analysis on c7552 and dag10k...@.";
  let cases = incremental_cases () in
  if not (check_incremental_gates cases) then exit 1;
  Format.printf "incremental gate: OK@."

(* The fast subset for `make obs-gate`: just the tracing-overhead bound,
   with and without a propagation context installed. *)
let run_obs_gate () =
  Format.printf "Observability gate: analyze hot path, collector off / on / propagating...@.";
  let tr = tracing_overhead () in
  if not (check_tracing_gate tr) then exit 1;
  Format.printf "observability gate: OK@."
