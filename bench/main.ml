(* Benchmark harness entry point.

   dune exec bench/main.exe                 -> all table/figure reproductions
   dune exec bench/main.exe -- table4 fig8  -> selected experiments
   dune exec bench/main.exe -- --ablation   -> design-choice ablations
   dune exec bench/main.exe -- --extension  -> extension studies (rotation,
                                               control points, dual-Vth, ...)
   dune exec bench/main.exe -- --perf       -> Bechamel wall-clock suite
   dune exec bench/main.exe -- --perf-json [PATH]
                                            -> suite + parallel scaling +
                                               compiled-core speedups +
                                               incremental re-analysis +
                                               GC pressure + tracing
                                               overhead as JSON
                                               (default BENCH_PR8.json)
   dune exec bench/main.exe -- --scaling-gate
                                            -> just the parallel-scaling and
                                               compiled-speedup gates (fast;
                                               non-zero exit on failure)
   dune exec bench/main.exe -- --incremental-gate
                                            -> just the single-PI-flip
                                               re-analysis speedup and
                                               bit-identity gates (fast;
                                               non-zero exit on failure)
   dune exec bench/main.exe -- --obs-gate   -> just the tracing-overhead
                                               bound, collector off / on /
                                               with propagation context
                                               (fast; non-zero exit on
                                               failure)
   dune exec bench/main.exe -- --list       -> available experiment ids *)

let print_header () =
  Format.printf
    "=================================================================@.\
     Temperature-aware NBTI modeling - evaluation reproduction@.\
     (DATE 2007 / TDSC 2011; PTM-90nm analytical substrate)@.\
     =================================================================@.@."

let run_entry (id, description, f) =
  Format.printf ">>> %s: %s@.@." id description;
  f ()

let list_entries () =
  Format.printf "Experiments:@.";
  List.iter (fun (id, d, _) -> Format.printf "  %-10s %s@." id d) Experiments.all;
  Format.printf "Ablations:@.";
  List.iter (fun (id, d, _) -> Format.printf "  %-10s %s@." id d) Ablations.all;
  Format.printf "Extensions:@.";
  List.iter (fun (id, d, _) -> Format.printf "  %-10s %s@." id d) Extensions.all

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] -> list_entries ()
  | [ "--perf" ] ->
    print_header ();
    Perf.run ()
  | [ "--perf-json" ] -> Perf.run_json ~path:"BENCH_PR8.json"
  | [ "--perf-json"; path ] -> Perf.run_json ~path
  | [ "--scaling-gate" ] -> Perf.run_scaling_gate ()
  | [ "--incremental-gate" ] -> Perf.run_incremental_gate ()
  | [ "--obs-gate" ] -> Perf.run_obs_gate ()
  | [ "--ablation" ] ->
    print_header ();
    List.iter run_entry Ablations.all
  | [ "--extension" ] ->
    print_header ();
    List.iter run_entry Extensions.all
  | [] ->
    print_header ();
    List.iter run_entry Experiments.all
  | ids ->
    print_header ();
    List.iter
      (fun id ->
        match
          List.find_opt
            (fun (i, _, _) -> i = id)
            (Experiments.all @ Ablations.all @ Extensions.all)
        with
        | Some entry -> run_entry entry
        | None ->
          Format.printf "unknown experiment %s (try --list)@." id;
          exit 1)
      ids
