.PHONY: all build test smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# End-to-end smoke of the analysis daemon: start a server on a private
# socket, issue one analyze request against c17, assert a well-formed
# response, and shut the server down.
smoke: build
	./scripts/smoke_server.sh

check: build test smoke

clean:
	dune clean
