.PHONY: all build test smoke chaos-smoke fleet-smoke parallel-smoke obs-smoke calibrate-smoke scaling-gate incremental-gate obs-gate bench-json bench-txt check clean

all: build

build:
	dune build

test:
	dune runtest

# End-to-end smoke of the analysis daemon: start a server on a private
# socket, issue one analyze request against c17, assert a well-formed
# response, and shut the server down.
smoke: build
	./scripts/smoke_server.sh

# Fault-injection smoke: run the daemon under an armed fault plan
# (shedding, injected failures, truncated writes) and assert structured
# errors, a surviving retry client, deadline enforcement and a graceful
# shutdown.
chaos-smoke: build
	./scripts/chaos_smoke.sh

# Fleet smoke: a router consistent-hash-routing over three backends;
# asserts singleflight coalescing, zero failed requests while one
# backend is SIGKILLed mid-batch (with a recorded failover), a
# warm-cache handoff to the resurrected backend, and byte-identity of
# routed answers against a single-backend run.
fleet-smoke: build
	./scripts/fleet_smoke.sh

# Parallel smoke: the c432 variation study must be byte-identical at
# --jobs 1 and --jobs 4, and multi-domain wall time must not be
# pathological (a real speedup on multicore hosts, a bounded
# oversubscription slowdown on single-core ones).
parallel-smoke: build
	./scripts/parallel_smoke.sh

# Observability smoke: capture a Chrome trace from a CLI analyze run and
# validate it with `nbti_tool trace`, then serve with an access log and
# assert Prometheus metrics plus non-empty JSONL access records.
obs-smoke: build
	./scripts/obs_smoke.sh

# Calibration smoke: gen-measurements -> calibrate CLI -> the calibrate
# wire op through a daemon with one injected truncated write (the
# retrying client must ride it out), a cache hit on repeat, and the op
# visible in stats.
calibrate-smoke: build
	./scripts/calibrate_smoke.sh

# Parallel-scaling gate: times the c432 hot paths at 1/2/4 domains,
# checks bit-identity, the scaling verdict (strict >= 1.5x at 2 domains
# on multicore hosts, an oversubscription floor on single-core ones) and
# the >= 3x compiled-vs-PR3 single-thread speedups. Non-zero exit on any
# failure.
scaling-gate: build
	dune exec bench/main.exe -- --scaling-gate

# Incremental re-analysis gate: single-PI-flip session re-analysis on
# c7552 and the 10^4-gate DAG must be >= 10x faster than a full
# compiled aging pass, and bit-identical to the full recompute at
# 1/2/4 domains. Non-zero exit on any failure.
incremental-gate: build
	dune exec bench/main.exe -- --incremental-gate

# Observability gate: tracing overhead on the memoized analyze hot path
# must stay under 3% relative or 5 us absolute, both with a bare
# collector and with a distributed-trace propagation context installed
# (the fleet configuration). Non-zero exit on failure.
obs-gate: build
	dune exec bench/main.exe -- --obs-gate

# Machine-readable benchmark record: Bechamel ns/run for every kernel,
# 1/2/4-domain scaling of the parallel hot paths, compiled-core speedups
# vs the PR3 boxed baselines, the incremental single-PI-flip re-analysis
# gate, GC pressure of the variation hot path, recommended_domains for
# this host, and the tracing overhead of the analyze hot path (must stay
# under 3%).
bench-json: build
	dune exec bench/main.exe -- --perf-json BENCH_PR8.json

# Human-readable benchmark transcripts (untracked; see .gitignore).
bench-txt: build
	dune exec bench/main.exe -- --perf > bench_perf_output.txt
	dune exec bench/main.exe -- --ablation > bench_ablation_output.txt
	dune exec bench/main.exe -- --extension > bench_extension_output.txt
	@echo "wrote bench_perf_output.txt bench_ablation_output.txt bench_extension_output.txt"

check: build test smoke chaos-smoke fleet-smoke parallel-smoke obs-smoke calibrate-smoke scaling-gate incremental-gate obs-gate

clean:
	dune clean
