.PHONY: all build test smoke chaos-smoke parallel-smoke obs-smoke bench-json check clean

all: build

build:
	dune build

test:
	dune runtest

# End-to-end smoke of the analysis daemon: start a server on a private
# socket, issue one analyze request against c17, assert a well-formed
# response, and shut the server down.
smoke: build
	./scripts/smoke_server.sh

# Fault-injection smoke: run the daemon under an armed fault plan
# (shedding, injected failures, truncated writes) and assert structured
# errors, a surviving retry client, deadline enforcement and a graceful
# shutdown.
chaos-smoke: build
	./scripts/chaos_smoke.sh

# Parallel-determinism smoke: the c432 variation study must be
# byte-identical at --jobs 1 and --jobs 4.
parallel-smoke: build
	./scripts/parallel_smoke.sh

# Observability smoke: capture a Chrome trace from a CLI analyze run and
# validate it with `nbti_tool trace`, then serve with an access log and
# assert Prometheus metrics plus non-empty JSONL access records.
obs-smoke: build
	./scripts/obs_smoke.sh

# Machine-readable benchmark record: Bechamel ns/run for every kernel,
# 1/2/4-domain scaling of the parallel hot paths, and the tracing
# overhead of the analyze hot path (must stay under 3%).
bench-json: build
	dune exec bench/main.exe -- --perf-json BENCH_PR5.json

check: build test smoke chaos-smoke parallel-smoke obs-smoke

clean:
	dune clean
