(* nbti_tool: command-line front end to the NBTI/leakage platform.

   Subcommands mirror the Fig. 6 flow: load or generate a netlist, derive
   signal probabilities, analyze fresh/aged timing and leakage, and run the
   two standby optimizations (IVC, sleep transistor insertion). *)

open Cmdliner

(* --- shared arguments --- *)

let netlist_conv =
  let parse s =
    if Sys.file_exists s then
      try Ok (Circuit.Bench_io.parse_file s) with Failure m -> Error (`Msg m)
    else begin
      try Ok (Circuit.Generators.by_name s)
      with Not_found ->
        Error (`Msg (Printf.sprintf "%s: neither a .bench file nor a known benchmark name" s))
    end
  in
  Arg.conv (parse, fun fmt t -> Format.fprintf fmt "%s" t.Circuit.Netlist.name)

let netlist_arg =
  let doc = "Circuit: an ISCAS85 benchmark name (c17, c432, ... c7552) or a .bench file path." in
  Arg.(required & pos 0 (some netlist_conv) None & info [] ~docv:"CIRCUIT" ~doc)

let ras_arg =
  let doc = "Active:standby time ratio, e.g. 1:9." in
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> begin
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some a, Some b when a > 0.0 && b >= 0.0 -> Ok (a, b)
      | _ -> Error (`Msg "RAS must be two positive numbers A:S")
    end
    | _ -> Error (`Msg "RAS must look like 1:9")
  in
  let ras_conv = Arg.conv (parse, fun fmt (a, b) -> Format.fprintf fmt "%g:%g" a b) in
  Arg.(value & opt ras_conv (1.0, 9.0) & info [ "ras" ] ~docv:"A:S" ~doc)

let t_active_arg =
  Arg.(value & opt float 400.0 & info [ "t-active" ] ~docv:"K" ~doc:"Active-mode die temperature [K].")

let t_standby_arg =
  Arg.(value & opt float 330.0 & info [ "t-standby" ] ~docv:"K" ~doc:"Standby-mode die temperature [K].")

let years_arg =
  Arg.(value & opt float 10.0 & info [ "years" ] ~docv:"Y" ~doc:"Operation time in years.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs_arg =
  let doc =
    "Worker domains for the parallel hot paths; 0 picks the machine's recommended count. Results \
     are bit-identical for any value, including 1."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "NBTI_JOBS") ~doc)

let apply_jobs n =
  if n < 0 then begin
    prerr_endline "jobs must be >= 0";
    exit 1
  end
  else if n > 0 then Parallel.Pool.configure_default ~domains:n

let standby_arg =
  let doc =
    "Standby state: 'worst' (all internal nodes 0), 'best' (all 1), or a 0/1 string applied to \
     the primary inputs."
  in
  Arg.(value & opt string "worst" & info [ "standby" ] ~docv:"STATE" ~doc)

let aging_config ras t_active t_standby years =
  Aging.Circuit_aging.default_config ~ras ~t_active ~t_standby ~time:(Physics.Units.years years) ()

let standby_state net = function
  | "worst" -> Ok Aging.Circuit_aging.Standby_all_stressed
  | "best" -> Ok Aging.Circuit_aging.Standby_all_relaxed
  | bits ->
    let n = Circuit.Netlist.n_primary_inputs net in
    if String.length bits <> n then
      Error (Printf.sprintf "standby vector must have %d bits" n)
    else if String.exists (fun c -> c <> '0' && c <> '1') bits then
      Error "standby vector must be a 0/1 string"
    else Ok (Aging.Circuit_aging.Standby_vector (Array.init n (fun i -> bits.[i] = '1')))

(* --- observability: --trace / --log-level / --log-json --- *)

let log_level_arg =
  let doc = "Log verbosity: debug, info, warn, error or quiet." in
  Arg.(value & opt string "warn" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_json_arg =
  Arg.(value & flag & info [ "log-json" ] ~doc:"Emit log records as JSONL instead of text.")

let trace_arg =
  let doc =
    "Record the run as Chrome trace_event JSON to $(docv) (open in chrome://tracing or Perfetto; \
     summarize with 'nbti_tool trace $(docv)'). A flame summary is printed to stderr."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let net_name (n : Circuit.Netlist.t) = n.Circuit.Netlist.name

let apply_logging level json =
  (match Obs.Log.level_of_string level with
  | Ok l -> Obs.Log.set_level l
  | Error m ->
    prerr_endline m;
    exit 2);
  Obs.Log.set_json json

(* Wraps a subcommand body: installs the log level, a correlation id for
   every span / log record / pool chunk the run produces, and — when
   --trace is given — a span collector whose contents are written out
   (and summarized to stderr) even if the body raises. A traced run also
   originates a distributed-trace context, so spans carry a trace id and
   any server hop the body makes (via Client) joins the same trace. *)
let with_observability ~cid ~level ~json ~trace f =
  apply_logging level json;
  Obs.Ctx.with_id cid @@ fun () ->
  match trace with
  | None -> f ()
  | Some path ->
    let collector = Obs.Trace.create () in
    Obs.Trace.install collector;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.uninstall ();
        try
          Obs.Trace.write_chrome_json ~process_name:cid collector ~path;
          Format.eprintf "%s@." (Obs.Trace.flame_summary collector);
          Format.eprintf "trace: %d spans written to %s@."
            (List.length (Obs.Trace.spans collector))
            path
        with Sys_error m -> Format.eprintf "trace: cannot write %s: %s@." path m)
      (fun () ->
        Obs.Ctx.with_trace
          { Obs.Ctx.trace_id = Obs.Trace.new_trace_id (); parent_span = None }
          f)

(* --- SLO objectives (--slo, shared by serve and route) --- *)

let slo_spec_arg =
  let doc =
    "Per-op latency objectives, e.g. 'analyze=50ms:99,batch=2s:95': a request slower than its \
     op's threshold (or failing) counts against the target percentage. Multi-window (5m/1h) \
     burn rates surface under stats.slo, as nbti_slo_* metrics, and in 'nbti_tool top'."
  in
  Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"SPEC" ~doc)

let parse_slo ~cmd spec =
  match spec with
  | None -> None
  | Some s -> begin
    match Obs.Slo.parse_spec s with
    | Ok objectives -> Some (Obs.Slo.create objectives)
    | Error m ->
      Format.eprintf "nbti_tool %s: --slo: %s@." cmd m;
      exit 2
  end

let trace_spans_arg =
  let doc =
    "Keep the last $(docv) completed spans in an in-process ring served by the trace_export \
     op (0 disables). This is what lets a fleet router collect this process's spans into a \
     merged trace."
  in
  Arg.(value & opt int 0 & info [ "trace-spans" ] ~docv:"N" ~doc)

(* --- stats --- *)

let stats_cmd =
  let run net =
    Format.printf "%a@." Circuit.Netlist.pp_stats (Circuit.Netlist.stats net);
    let levels = Circuit.Netlist.levels net in
    let fanout = Circuit.Netlist.fanout net in
    let max_fanout = Array.fold_left (fun acc f -> Stdlib.max acc (Array.length f)) 0 fanout in
    Format.printf "max logic level: %d, max fanout: %d@."
      (Array.fold_left Stdlib.max 0 levels)
      max_fanout
  in
  let term = Term.(const run $ netlist_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Print netlist statistics.") term

(* --- analyze --- *)

let analyze_cmd =
  let run net ras t_active t_standby years standby jobs trace level json =
    apply_jobs jobs;
    match standby_state net standby with
    | Error m ->
      prerr_endline m;
      exit 1
    | Ok standby ->
      with_observability
        ~cid:("cli:analyze:" ^ net_name net)
        ~level ~json ~trace
      @@ fun () ->
      let aging = aging_config ras t_active t_standby years in
      let cfg = Flow.Platform.default_config ~aging () in
      let p = Flow.Platform.prepare cfg net in
      let a = Flow.Platform.analyze cfg p ~standby in
      Flow.Report.print
        {
          Flow.Report.title =
            Printf.sprintf "NBTI/leakage analysis of %s (RAS %g:%g, %g/%g K, %g years)"
              net.Circuit.Netlist.name (fst ras) (snd ras) t_active t_standby years;
          header = [ "metric"; "value" ];
          rows =
            [
              [ "gates"; string_of_int a.Flow.Platform.stats.Circuit.Netlist.n_gates ];
              [ "fresh delay"; Flow.Report.cell_ps a.Flow.Platform.fresh_delay ^ " ps" ];
              [ "aged delay"; Flow.Report.cell_ps a.Flow.Platform.aged_delay ^ " ps" ];
              [ "degradation"; Flow.Report.cell_pct a.Flow.Platform.degradation ^ " %" ];
              [ "max dVth"; Flow.Report.cell_mv a.Flow.Platform.max_dvth ^ " mV" ];
              [ "standby leakage"; Flow.Report.cell_si ~unit:"A" a.Flow.Platform.standby_leakage ];
              [ "active leakage"; Flow.Report.cell_si ~unit:"A" a.Flow.Platform.active_leakage ];
            ];
        }
  in
  let term =
    Term.(
      const run $ netlist_arg $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ standby_arg
      $ jobs_arg $ trace_arg $ log_level_arg $ log_json_arg)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Fresh vs aged timing and leakage for a standby state.") term

(* --- ivc --- *)

let ivc_cmd =
  let pool_arg =
    Arg.(value & opt int 64 & info [ "pool" ] ~docv:"N" ~doc:"Vectors per search round.")
  in
  let run net ras t_active t_standby years seed pool jobs trace level json =
    apply_jobs jobs;
    with_observability ~cid:("cli:ivc:" ^ net_name net) ~level ~json ~trace
    @@ fun () ->
    let aging = aging_config ras t_active t_standby years in
    let cfg = Flow.Platform.default_config ~aging () in
    let p = Flow.Platform.prepare cfg net in
    let result, stats =
      Flow.Platform.optimize_ivc cfg p ~rng:(Physics.Rng.create ~seed) ~pool ()
    in
    Format.printf "MLV search: %d evaluations, %d rounds, converged: %b@." stats.Ivc.Mlv.evaluations
      stats.Ivc.Mlv.rounds stats.Ivc.Mlv.converged;
    Flow.Report.print
      {
        Flow.Report.title =
          Printf.sprintf "IVC co-optimization on %s (best vector first)" net.Circuit.Netlist.name;
        header = [ "vector"; "leakage"; "degradation[%]" ];
        rows =
          List.map
            (fun (c : Ivc.Co_opt.choice) ->
              [
                Flow.Report.vector_string c.Ivc.Co_opt.vector;
                Flow.Report.cell_si ~unit:"A" c.Ivc.Co_opt.leakage;
                Flow.Report.cell_pct c.Ivc.Co_opt.degradation;
              ])
            result.Ivc.Co_opt.all;
      };
    Format.printf "MLV-to-MLV degradation spread: %s %%@."
      (Flow.Report.cell_pct result.Ivc.Co_opt.spread)
  in
  let term =
    Term.(
      const run $ netlist_arg $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ seed_arg
      $ pool_arg $ jobs_arg $ trace_arg $ log_level_arg $ log_json_arg)
  in
  Cmd.v (Cmd.info "ivc" ~doc:"Search minimum-leakage vectors and co-optimize for NBTI.") term

(* --- st --- *)

let st_cmd =
  let style_arg =
    let style_conv =
      Arg.enum
        [
          ("footer", Sleep.St_insertion.Footer);
          ("header", Sleep.St_insertion.Header);
          ("both", Sleep.St_insertion.Footer_and_header);
        ]
    in
    Arg.(value & opt style_conv Sleep.St_insertion.Footer_and_header
        & info [ "style" ] ~docv:"STYLE" ~doc:"footer | header | both.")
  in
  let beta_arg =
    Arg.(value & opt float 0.03 & info [ "beta" ] ~docv:"B" ~doc:"Allowed ST delay penalty (0-1).")
  in
  let vth_arg =
    Arg.(value & opt (some float) None & info [ "vth-st" ] ~docv:"V" ~doc:"Initial ST |Vth| [V].")
  in
  let run net ras t_active t_standby years style beta vth_st =
    let aging = aging_config ras t_active t_standby years in
    let cfg = Flow.Platform.default_config ~aging () in
    let p = Flow.Platform.prepare cfg net in
    let r = Flow.Platform.optimize_st cfg p ~style ~beta ?vth_st () in
    let no_st =
      Sleep.St_insertion.without_st aging (Flow.Platform.netlist p) ~node_sp:(Flow.Platform.node_sp p)
    in
    Flow.Report.print
      {
        Flow.Report.title = Printf.sprintf "Sleep transistor insertion on %s" net.Circuit.Netlist.name;
        header = [ "metric"; "value" ];
        rows =
          [
            [ "fresh delay (no ST)"; Flow.Report.cell_ps r.Sleep.St_insertion.fresh_delay ^ " ps" ];
            [ "fresh delay (with ST)"; Flow.Report.cell_ps r.Sleep.St_insertion.fresh_delay_with_st ^ " ps" ];
            [ "aged delay (with ST)"; Flow.Report.cell_ps r.Sleep.St_insertion.aged_delay_with_st ^ " ps" ];
            [ "ST dVth @ lifetime"; Flow.Report.cell_mv r.Sleep.St_insertion.st_dvth ^ " mV" ];
            [ "ST penalty @ lifetime"; Flow.Report.cell_pct r.Sleep.St_insertion.st_penalty_aged ^ " %" ];
            [ "internal aging"; Flow.Report.cell_pct r.Sleep.St_insertion.internal_degradation ^ " %" ];
            [ "total vs fresh"; Flow.Report.cell_pct r.Sleep.St_insertion.total_degradation ^ " %" ];
            [ "no-ST worst case"; Flow.Report.cell_pct no_st ^ " %" ];
          ];
      }
  in
  let term =
    Term.(
      const run $ netlist_arg $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ style_arg
      $ beta_arg $ vth_arg)
  in
  Cmd.v (Cmd.info "st" ~doc:"Analyze sleep transistor insertion with NBTI-aware sizing.") term

(* --- dvth --- *)

let dvth_cmd =
  let duty_arg =
    Arg.(value & opt float 0.5 & info [ "duty" ] ~docv:"D" ~doc:"Active-mode stress duty (SP of 0).")
  in
  let standby_duty_arg =
    Arg.(value & opt float 1.0 & info [ "standby-duty" ] ~docv:"D" ~doc:"Standby stress duty (1 = input held at 0).")
  in
  let run ras t_active t_standby years duty standby_duty =
    let tech = Device.Tech.ptm_90nm in
    let params = Nbti.Rd_model.default_params in
    let schedule =
      Nbti.Schedule.active_standby ~ras ~t_active ~t_standby ~active_duty:duty
        ~standby_duty ()
    in
    let cond = Nbti.Vth_shift.nominal_pmos tech in
    let time = Physics.Units.years years in
    let dv = Nbti.Vth_shift.dvth params tech cond ~schedule ~time in
    let eq = Nbti.Schedule.equivalent params schedule in
    Format.printf "schedule: %a@." Nbti.Schedule.pp schedule;
    Format.printf "equivalent duty cycle c_eq = %.4f, tau_eq = %.4g s@." eq.Nbti.Schedule.c_eq
      eq.Nbti.Schedule.tau_eq;
    Format.printf "dVth(%g years) = %s mV -> gate delay degradation %s %%@." years
      (Flow.Report.cell_mv dv)
      (Flow.Report.cell_pct (Nbti.Degradation.factor tech ~dvth:dv))
  in
  let term =
    Term.(
      const run $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ duty_arg $ standby_duty_arg)
  in
  Cmd.v (Cmd.info "dvth" ~doc:"Evaluate the temperature-aware device dVth for a schedule.") term

(* --- lifetime --- *)

let lifetime_cmd =
  let margin_arg =
    Arg.(value & opt float 0.03 & info [ "margin" ] ~docv:"M" ~doc:"Timing guardband as a fraction.")
  in
  let run net ras t_active t_standby standby margin =
    match standby_state net standby with
    | Error m ->
      prerr_endline m;
      exit 1
    | Ok standby ->
      let aging = aging_config ras t_active t_standby 10.0 in
      let sp =
        Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
      in
      (match Aging.Lifetime.solve aging net ~node_sp:sp ~standby ~margin () with
      | `Lifetime t ->
        Format.printf "%s stays within a %s %% guardband for %.2f years@."
          net.Circuit.Netlist.name (Flow.Report.cell_pct margin) (t /. Physics.Units.year)
      | `Never_fails ->
        Format.printf "%s never exceeds a %s %% guardband within 30 years@."
          net.Circuit.Netlist.name (Flow.Report.cell_pct margin)
      | `Fails_immediately ->
        Format.printf "%s exceeds a %s %% guardband within the first hour@."
          net.Circuit.Netlist.name (Flow.Report.cell_pct margin))
  in
  let term =
    Term.(const run $ netlist_arg $ ras_arg $ t_active_arg $ t_standby_arg $ standby_arg $ margin_arg)
  in
  Cmd.v
    (Cmd.info "lifetime" ~doc:"Solve how long a timing guardband lasts under NBTI.")
    term

(* --- gen --- *)

let gen_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .bench path.")
  in
  let run net path =
    Circuit.Bench_io.write_file net ~path;
    Format.printf "wrote %s (%d gates) to %s@." net.Circuit.Netlist.name (Circuit.Netlist.n_gates net) path
  in
  let term = Term.(const run $ netlist_arg $ out_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Write a generated benchmark as a .bench netlist.") term

(* --- lib (Liberty) --- *)

let lib_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .lib path.")
  in
  let aged_arg =
    Arg.(value & flag & info [ "aged" ] ~doc:"Fold the mission profile's worst-case dVth into the delays.")
  in
  let run ras t_active t_standby years out aged =
    let tech = Device.Tech.ptm_90nm in
    let text =
      if aged then begin
        let schedule =
          Nbti.Schedule.active_standby ~ras ~t_active ~t_standby ~active_duty:0.5 ~standby_duty:1.0 ()
        in
        Cell.Liberty.aged_library Nbti.Rd_model.default_params tech ~schedule
          ~time:(Physics.Units.years years)
      end
      else Cell.Liberty.to_string tech (Cell.Characterize.library_characterization tech ())
    in
    let oc = open_out out in
    output_string oc text;
    close_out oc;
    Format.printf "wrote %s (%d bytes, %d cells%s)@." out (String.length text)
      (List.length Cell.Stdcell.library)
      (if aged then ", aged view" else "")
  in
  let term =
    Term.(const run $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ out_arg $ aged_arg)
  in
  Cmd.v
    (Cmd.info "lib" ~doc:"Emit the characterized cell library as Liberty (.lib), fresh or aged.")
    term

(* --- verilog --- *)

let verilog_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .v path.")
  in
  let run net out =
    Circuit.Verilog.write_file net ~path:out;
    Format.printf "wrote %s as structural Verilog to %s@." net.Circuit.Netlist.name out
  in
  let term = Term.(const run $ netlist_arg $ out_arg) in
  Cmd.v (Cmd.info "verilog" ~doc:"Write a netlist as gate-level structural Verilog.") term

(* --- seq --- *)

let seq_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"ISCAS89-style .bench with DFF gates.")
  in
  let run path ras t_active t_standby years =
    match (try Ok (Sequential.parse_file path) with Failure m -> Error m) with
    | Error m ->
      prerr_endline m;
      exit 1
    | Ok s ->
      Format.printf "%s: %d flops, %d real inputs, %d core gates@." s.Sequential.name
        (Sequential.n_flops s) (Sequential.n_real_inputs s)
        (Circuit.Netlist.n_gates s.Sequential.comb);
      let input_sp = Array.make (Sequential.n_real_inputs s) 0.5 in
      let sp, sweeps = Sequential.steady_state_sp s ~input_sp () in
      Format.printf "state signal probabilities converged in %d sweeps@." sweeps;
      let aging = aging_config ras t_active t_standby years in
      let a =
        Aging.Circuit_aging.analyze aging s.Sequential.comb ~node_sp:sp
          ~standby:Aging.Circuit_aging.Standby_all_stressed ()
      in
      Format.printf "core: fresh %s ps, %g-year worst-case degradation %s %%@."
        (Flow.Report.cell_ps a.Aging.Circuit_aging.fresh.Sta.Timing.max_delay)
        years
        (Flow.Report.cell_pct a.Aging.Circuit_aging.degradation)
  in
  let term = Term.(const run $ file_arg $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg) in
  Cmd.v (Cmd.info "seq" ~doc:"Analyze a sequential (DFF) .bench design.") term

(* --- sram --- *)

let sram_cmd =
  let run ras t_active t_standby years =
    let cell = Sram.Cell6t.make () in
    let params = Nbti.Rd_model.default_params in
    let schedule =
      Nbti.Schedule.active_standby ~ras ~t_active ~t_standby ~active_duty:0.5 ~standby_duty:1.0 ()
    in
    let time = Physics.Units.years years in
    let fresh =
      Sram.Cell6t.static_noise_margin cell ~dvth_left:0.0 ~dvth_right:0.0 ~temp_k:t_active
        ~mode:`Read
    in
    let static_ = Sram.Cell6t.snm_after params cell ~schedule ~time ~store_one_fraction:1.0 ~mode:`Read in
    let flip = Sram.Cell6t.snm_after params cell ~schedule ~time ~store_one_fraction:0.5 ~mode:`Read in
    Format.printf "6T cell read SNM: fresh %s mV, %g years static %s mV, with bit flipping %s mV@."
      (Flow.Report.cell_mv fresh.Sram.Cell6t.snm) years
      (Flow.Report.cell_mv static_.Sram.Cell6t.snm)
      (Flow.Report.cell_mv flip.Sram.Cell6t.snm);
    Format.printf "flipping recovers %s %% of the SNM loss@."
      (Flow.Report.cell_pct
         (Sram.Cell6t.recovery_from_flipping params cell ~schedule ~time ~mode:`Read))
  in
  let term = Term.(const run $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg) in
  Cmd.v (Cmd.info "sram" ~doc:"6T SRAM read-stability degradation and bit-flipping recovery.") term

(* --- thermal --- *)

let thermal_cmd =
  let tasks_arg = Arg.(value & opt int 12 & info [ "tasks" ] ~docv:"N" ~doc:"Number of tasks.") in
  let idle_arg =
    Arg.(value & opt float 0.5 & info [ "idle-fraction" ] ~docv:"F" ~doc:"Standby share of total time.")
  in
  let run n_tasks idle_fraction seed =
    let rng = Physics.Rng.create ~seed in
    let model = Thermal.Rc_model.default in
    let tasks = Thermal.Workload.random_tasks ~rng ~n:n_tasks () in
    let mixed = Thermal.Workload.with_idle ~rng ~idle_power:8.0 ~idle_fraction tasks in
    let s = Thermal.Workload.summarize model ~active_threshold:20.0 mixed in
    let a, st = s.Thermal.Workload.ras in
    Format.printf "workload: %d tasks + idle, active %.0f s / standby %.0f s (RAS %.2f:%.2f)@."
      n_tasks s.Thermal.Workload.active_time s.Thermal.Workload.standby_time a st;
    Format.printf "steady temperatures: T_active = %.1f K (%.1f C), T_standby = %.1f K (%.1f C)@."
      s.Thermal.Workload.t_active
      (Physics.Units.celsius_of_kelvin s.Thermal.Workload.t_active)
      s.Thermal.Workload.t_standby
      (Physics.Units.celsius_of_kelvin s.Thermal.Workload.t_standby)
  in
  let term = Term.(const run $ tasks_arg $ idle_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "thermal" ~doc:"Generate a task-set workload and extract (RAS, T_active, T_standby).")
    term

(* --- variation --- *)

let variation_cmd =
  let samples_arg =
    Arg.(value & opt int 500 & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let sigma_arg =
    Arg.(
      value & opt float 0.015
      & info [ "sigma" ] ~docv:"V" ~doc:"Per-gate Vth0 standard deviation [V].")
  in
  let run net ras t_active t_standby years seed samples sigma jobs trace level json =
    apply_jobs jobs;
    with_observability ~cid:("cli:variation:" ^ net_name net) ~level ~json ~trace
    @@ fun () ->
    let aging = aging_config ras t_active t_standby years in
    let config = Variation.Process_var.default_config ~sigma_vth:sigma ~n_samples:samples aging in
    let sp = Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5) in
    let t0 = Unix.gettimeofday () in
    let study =
      Variation.Process_var.run config net ~node_sp:sp
        ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let ps x = Flow.Report.cell_ps x ^ " ps" in
    let row label f =
      [ label; ps (f study.Variation.Process_var.fresh); ps (f study.Variation.Process_var.aged) ]
    in
    Flow.Report.print
      {
        Flow.Report.title =
          Printf.sprintf "Process variation study of %s (%d samples, sigma %g mV, %g years)"
            net.Circuit.Netlist.name samples (sigma *. 1e3) years;
        header = [ "metric"; "fresh"; "aged" ];
        rows =
          [
            row "mean" (fun s -> s.Physics.Stats.mean);
            row "stddev" (fun s -> s.Physics.Stats.stddev);
            row "min" (fun s -> s.Physics.Stats.min);
            row "max" (fun s -> s.Physics.Stats.max);
            [
              "3-sigma band";
              Printf.sprintf "%s .. %s"
                (ps (fst study.Variation.Process_var.fresh_3sigma))
                (ps (snd study.Variation.Process_var.fresh_3sigma));
              Printf.sprintf "%s .. %s"
                (ps (fst study.Variation.Process_var.aged_3sigma))
                (ps (snd study.Variation.Process_var.aged_3sigma));
            ];
          ];
      };
    Format.printf "aged 3-sigma low above fresh 3-sigma high (aging dominates variation): %b@."
      (Variation.Process_var.crossover study);
    (* Timing goes to stderr so stdout diffs cleanly across --jobs values. *)
    Format.eprintf "wall time: %.3f s@." elapsed
  in
  let term =
    Term.(
      const run $ netlist_arg $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ seed_arg
      $ samples_arg $ sigma_arg $ jobs_arg $ trace_arg $ log_level_arg $ log_json_arg)
  in
  Cmd.v
    (Cmd.info "variation"
       ~doc:"Monte-Carlo process-variation study of fresh vs aged delay (Fig. 12).")
    term

(* --- profile: per-stage time/alloc table --- *)

let profile_cmd =
  let runs_arg =
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc:"Repetitions of every stage.")
  in
  let run net ras t_active t_standby years runs jobs =
    apply_jobs jobs;
    if runs < 1 then begin
      prerr_endline "runs must be >= 1";
      exit 1
    end;
    let aging = aging_config ras t_active t_standby years in
    let tech = aging.Aging.Circuit_aging.tech in
    let temp_k = aging.Aging.Circuit_aging.schedule.Nbti.Schedule.t_ref in
    let standby = Aging.Circuit_aging.Standby_all_stressed in
    let input_sp = Logic.Signal_prob.uniform_inputs net 0.5 in
    (* Inputs each stage needs are computed once up front, so the timed
       region of a stage covers that stage only. *)
    let sp =
      Logic.Signal_prob.monte_carlo net ~rng:(Physics.Rng.create ~seed:7) ~input_sp ~n_vectors:4096
    in
    let stage_dvth = Aging.Circuit_aging.stage_dvth_map aging net ~node_sp:sp ~standby in
    let stages =
      [
        ( "signal-prob (MC, 4096 vectors)",
          fun () ->
            ignore
              (Logic.Signal_prob.monte_carlo net ~rng:(Physics.Rng.create ~seed:7) ~input_sp
                 ~n_vectors:4096) );
        ( "thermal (workload -> RAS, T)",
          fun () ->
            let rng = Physics.Rng.create ~seed:42 in
            let tasks = Thermal.Workload.random_tasks ~rng ~n:12 () in
            let mixed = Thermal.Workload.with_idle ~rng ~idle_power:8.0 ~idle_fraction:0.5 tasks in
            ignore (Thermal.Workload.summarize Thermal.Rc_model.default ~active_threshold:20.0 mixed)
        );
        ( "aging (R-D dVth table)",
          fun () ->
            let (_ : gate:int -> stage:int -> float) =
              Aging.Circuit_aging.stage_dvth_map aging net ~node_sp:sp ~standby
            in
            () );
        ( "STA (fresh + aged)",
          fun () ->
            ignore (Sta.Timing.fresh tech net ~temp_k ());
            ignore (Sta.Timing.analyze tech net ~temp_k ~stage_dvth ()) );
        ( "leakage (tables + expectation)",
          fun () ->
            let tabs = Leakage.Circuit_leakage.build_tables tech net ~temp_k:400.0 in
            ignore (Leakage.Circuit_leakage.expected_leakage tabs net ~node_sp:sp) );
      ]
    in
    let measure (label, f) =
      let samples =
        Array.init runs (fun _ ->
            let a0 = Gc.allocated_bytes () in
            let t0 = Unix.gettimeofday () in
            f ();
            let dt = Unix.gettimeofday () -. t0 in
            (dt, Gc.allocated_bytes () -. a0))
      in
      let times = Array.map fst samples in
      let min_s = Array.fold_left Float.min Float.infinity times in
      let mean_s = Array.fold_left ( +. ) 0.0 times /. float_of_int runs in
      (* Allocation is deterministic per run; the first sample is the
         per-run figure (later samples would only echo it). *)
      let alloc_mb = snd samples.(0) /. (1024.0 *. 1024.0) in
      [
        label;
        Printf.sprintf "%.3f" (min_s *. 1e3);
        Printf.sprintf "%.3f" (mean_s *. 1e3);
        Printf.sprintf "%.2f" alloc_mb;
      ]
    in
    Flow.Report.print
      {
        Flow.Report.title =
          Printf.sprintf "Pipeline profile of %s (%d gates, %d runs per stage)"
            net.Circuit.Netlist.name (Circuit.Netlist.n_gates net) runs;
        header = [ "stage"; "min [ms]"; "mean [ms]"; "alloc/run [MB]" ];
        rows = List.map measure stages;
      }
  in
  let term =
    Term.(
      const run $ netlist_arg $ ras_arg $ t_active_arg $ t_standby_arg $ years_arg $ runs_arg
      $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run each pipeline stage N times and print a per-stage time/allocation table.")
    term

(* --- trace: summarize a recorded Chrome trace --- *)

let trace_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Chrome trace_event JSON written by --trace or trace_export.")
  in
  let merge_arg =
    Arg.(
      value & opt (some string) None
      & info [ "merge" ] ~docv:"OUT"
          ~doc:
            "Merge the input traces (pid-remapped, ts-rebased onto the earliest origin) into \
             one Chrome trace at $(docv), then summarize the result.")
  in
  let read_json path =
    let text =
      match open_in path with
      | ic ->
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      | exception Sys_error m ->
        prerr_endline m;
        exit 1
    in
    match Server.Json.of_string text with
    | json -> json
    | exception Server.Json.Parse_error m ->
      Format.eprintf "%s: not valid JSON: %s@." path m;
      exit 1
  in
  (* Complete ("X") events carry their ancestry under args.path;
     instant markers have no duration and are only counted. *)
  let flame_pairs events =
    List.filter_map
      (fun e ->
        match (Server.Json.member_opt "args" e, Server.Json.member_opt "dur" e) with
        | Some args, Some dur -> begin
          match Server.Json.member_opt "path" args with
          | Some (Server.Json.String p) -> begin
            match Server.Json.to_float dur with
            | d when d > 0.0 -> Some (p, d)
            | _ -> None
            | exception Server.Json.Type_error _ -> None
          end
          | _ -> None
        end
        | _ -> None)
      events
  in
  let summarize label json =
    match Server.Tracefile.parse json with
    | Error m ->
      Format.eprintf "%s: %s@." label m;
      exit 1
    | Ok parsed ->
      let s = Server.Tracefile.summarize parsed in
      let ids = Server.Tracefile.trace_ids parsed in
      Format.printf "%d events (%d spans) in %s@." s.Server.Tracefile.events
        s.Server.Tracefile.spans label;
      List.iter
        (fun (pid, name) -> Format.printf "  pid %d: %s@." pid name)
        (List.sort compare s.Server.Tracefile.processes);
      if ids <> [] then
        Format.printf "  trace ids: %s@." (String.concat ", " ids);
      print_string
        (Obs.Trace.flame_of_paths (flame_pairs parsed.Server.Tracefile.events)
           ~dropped:s.Server.Tracefile.dropped)
  in
  let run paths merge_out =
    let inputs = List.map (fun p -> (p, read_json p)) paths in
    match merge_out with
    | None -> List.iter (fun (path, json) -> summarize path json) inputs
    | Some out ->
      let merged =
        try
          Server.Tracefile.merge
            (List.map
               (fun (path, json) ->
                 (Some (Filename.remove_extension (Filename.basename path)), json))
               inputs)
        with Server.Json.Type_error m ->
          Format.eprintf "merge failed: %s@." m;
          exit 1
      in
      (try
         let oc = open_out out in
         output_string oc (Server.Json.to_string merged);
         output_char oc '\n';
         close_out oc
       with Sys_error m ->
         Format.eprintf "cannot write %s: %s@." out m;
         exit 1);
      summarize out merged
  in
  let term = Term.(const run $ files_arg $ merge_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Validate recorded Chrome traces, print their flame summaries, and optionally merge \
          several processes' traces into one timeline.")
    term

(* --- calibrate / gen-measurements: Bayesian R-D parameter inference --- *)

let float_list_conv ~what =
  let parse s =
    let parts = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> begin
        match float_of_string_opt (String.trim p) with
        | Some v when Float.is_finite v && v > 0.0 -> go (v :: acc) rest
        | _ -> Error (`Msg (Printf.sprintf "%s: expected positive numbers, got %S" what p))
      end
    in
    go [] parts
  in
  let print fmt a =
    Format.fprintf fmt "%s"
      (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") a)))
  in
  Arg.conv (parse, print)

let calibrate_cmd =
  let csv_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"CSV"
          ~doc:"Measurement CSV: time_s,temp_k,vdd_v,dvth_v rows (header and # comments ok).")
  in
  let sampler_arg =
    Arg.(
      value & opt string "mh"
      & info [ "sampler" ] ~docv:"S"
          ~doc:"Posterior sampler: 'mh' (adaptive Metropolis-Hastings) or 'importance'.")
  in
  let particles_arg =
    Arg.(
      value & opt int 20_000
      & info [ "particles" ] ~docv:"N" ~doc:"Importance-sampling particle count.")
  in
  let chains_arg =
    Arg.(value & opt int 4 & info [ "chains" ] ~docv:"N" ~doc:"Independent MH chains.")
  in
  let warmup_arg =
    Arg.(value & opt int 1000 & info [ "warmup" ] ~docv:"N" ~doc:"Adaptation iterations per chain (discarded).")
  in
  let samples_arg =
    Arg.(value & opt int 1000 & info [ "samples" ] ~docv:"N" ~doc:"Kept posterior draws per chain.")
  in
  let thin_arg =
    Arg.(value & opt int 1 & info [ "thin" ] ~docv:"K" ~doc:"Keep every K-th post-warmup draw.")
  in
  let ci_level_arg =
    Arg.(value & opt float 0.95 & info [ "ci-level" ] ~docv:"P" ~doc:"Credible-interval mass in (0,1).")
  in
  let predict_arg =
    let triple_conv =
      let parse s =
        match String.split_on_char ',' (String.trim s) with
        | [ t; temp; v ] -> begin
          match
            (float_of_string_opt (String.trim t), float_of_string_opt (String.trim temp),
             float_of_string_opt (String.trim v))
          with
          | Some t, Some temp, Some v when t > 0.0 && temp > 0.0 && v > 0.0 -> Ok (t, temp, v)
          | _ -> Error (`Msg "predict point must be three positive numbers t_s,T_K,V")
        end
        | _ -> Error (`Msg "predict point must look like 3.1e8,400,1.0")
      in
      Arg.conv (parse, fun fmt (t, temp, v) -> Format.fprintf fmt "%g,%g,%g" t temp v)
    in
    Arg.(
      value & opt_all triple_conv []
      & info [ "predict" ] ~docv:"T,K,V"
          ~doc:"Posterior-predictive degradation point 'time_s,temp_k,vdd_v' (repeatable).")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSON posterior here instead of stdout.")
  in
  let run csv sampler particles chains warmup samples thin seed ci_level predict output jobs
      trace level json =
    apply_jobs jobs;
    with_observability ~cid:("cli:calibrate:" ^ Filename.basename csv) ~level ~json ~trace
    @@ fun () ->
    let dataset =
      match Calibrate.Dataset.of_csv_file csv with
      | Ok d -> d
      | Error { Calibrate.Dataset.line; message } ->
        (match line with
        | Some l -> Format.eprintf "nbti_tool calibrate: %s:%d: %s@." csv l message
        | None -> Format.eprintf "nbti_tool calibrate: %s: %s@." csv message);
        exit 1
    in
    let sampler =
      match sampler with
      | "mh" -> Calibrate.Engine.Mh
      | "importance" -> Calibrate.Engine.Importance { particles }
      | s ->
        Format.eprintf "nbti_tool calibrate: unknown sampler %S (mh or importance)@." s;
        exit 1
    in
    let config =
      {
        Calibrate.Engine.default_config with
        sampler;
        n_chains = chains;
        warmup;
        samples;
        thin;
        seed;
        ci_level;
        predict = Array.of_list predict;
      }
    in
    (match Calibrate.Engine.validate config with
    | Ok () -> ()
    | Error m ->
      Format.eprintf "nbti_tool calibrate: %s@." m;
      exit 1);
    let t0 = Unix.gettimeofday () in
    let posterior = Calibrate.Engine.run config dataset in
    let elapsed = Unix.gettimeofday () -. t0 in
    let body = Server.Json.to_string (Server.Protocol.json_of_posterior ~dataset posterior) in
    (match output with
    | None -> print_endline body
    | Some path ->
      let oc = open_out path in
      output_string oc body;
      output_char oc '\n';
      close_out oc);
    Format.eprintf "calibrate: %d points, %d draws, wall time %.3f s@."
      (Calibrate.Dataset.length dataset)
      (Array.length posterior.Calibrate.Posterior.draws)
      elapsed
  in
  let term =
    Term.(
      const run $ csv_arg $ sampler_arg $ particles_arg $ chains_arg $ warmup_arg $ samples_arg
      $ thin_arg $ seed_arg $ ci_level_arg $ predict_arg $ output_arg $ jobs_arg $ trace_arg
      $ log_level_arg $ log_json_arg)
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Fit the JEP122H NBTI law to measured dVth data by Bayesian inference: posterior \
          credible intervals, predictive degradation bands and an R-D parameter bridge.")
    term

let gen_measurements_cmd =
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the CSV here instead of stdout.")
  in
  let replicates_arg =
    Arg.(value & opt int 1 & info [ "replicates" ] ~docv:"N" ~doc:"Noisy observations per grid cell.")
  in
  let times_arg =
    Arg.(
      value & opt (some (float_list_conv ~what:"times")) None
      & info [ "times" ] ~docv:"S,S,..." ~doc:"Stress times [s] (default: 6 log-spaced 1e3..1e8).")
  in
  let temps_arg =
    Arg.(
      value & opt (some (float_list_conv ~what:"temps")) None
      & info [ "temps" ] ~docv:"K,K,..." ~doc:"Stress temperatures [K] (default: 330,365,400).")
  in
  let vdds_arg =
    Arg.(
      value & opt (some (float_list_conv ~what:"vdds")) None
      & info [ "vdds" ] ~docv:"V,V,..." ~doc:"Stress gate drives [V] (default: 0.9,1.0,1.1).")
  in
  let truth = Calibrate.Synth.default_truth in
  let log_a0_arg =
    Arg.(
      value & opt float truth.Calibrate.Model.log_a0
      & info [ "log-a0" ] ~docv:"X" ~doc:"Ground-truth ln A0.")
  in
  let eaa_arg =
    Arg.(
      value & opt float truth.Calibrate.Model.eaa_ev
      & info [ "eaa" ] ~docv:"EV" ~doc:"Ground-truth apparent activation energy [eV].")
  in
  let alpha_arg =
    Arg.(
      value & opt float truth.Calibrate.Model.alpha_v
      & info [ "alpha" ] ~docv:"A" ~doc:"Ground-truth voltage exponent.")
  in
  let n_arg =
    Arg.(
      value & opt float truth.Calibrate.Model.n_t
      & info [ "n" ] ~docv:"N" ~doc:"Ground-truth time exponent.")
  in
  let noise_arg =
    Arg.(
      value & opt float (Float.exp truth.Calibrate.Model.log_sigma)
      & info [ "noise" ] ~docv:"V" ~doc:"Measurement noise sigma [V].")
  in
  let run output seed replicates times temps vdds log_a0 eaa alpha n noise =
    if not (Float.is_finite noise && noise > 0.0) then begin
      prerr_endline "nbti_tool gen-measurements: noise must be positive";
      exit 1
    end;
    if replicates < 1 then begin
      prerr_endline "nbti_tool gen-measurements: replicates must be >= 1";
      exit 1
    end;
    let truth =
      {
        Calibrate.Model.log_a0;
        eaa_ev = eaa;
        alpha_v = alpha;
        n_t = n;
        log_sigma = Float.log noise;
      }
    in
    let data = Calibrate.Synth.generate ?times ?temps ?vdds ~replicates ~truth ~seed () in
    let buf = Buffer.create 4096 in
    (* Ground truth rides along as comment lines the CSV parser skips, so a
       generated file is self-documenting and still feeds calibrate as-is. *)
    Buffer.add_string buf
      (Printf.sprintf "# synthetic JEP122H measurements (seed %d, %d points)\n" seed
         (Calibrate.Dataset.length data));
    Buffer.add_string buf
      (Printf.sprintf "# truth: log_a0=%.17g eaa_ev=%.17g alpha_v=%.17g n_t=%.17g sigma_v=%.17g\n"
         truth.Calibrate.Model.log_a0 truth.Calibrate.Model.eaa_ev truth.Calibrate.Model.alpha_v
         truth.Calibrate.Model.n_t noise);
    Buffer.add_string buf (Calibrate.Dataset.to_csv data);
    (match output with
    | None -> print_string (Buffer.contents buf)
    | Some path ->
      let oc = open_out path in
      Buffer.output_buffer oc buf;
      close_out oc;
      Format.eprintf "gen-measurements: %d points written to %s@."
        (Calibrate.Dataset.length data) path)
  in
  let term =
    Term.(
      const run $ output_arg $ seed_arg $ replicates_arg $ times_arg $ temps_arg $ vdds_arg
      $ log_a0_arg $ eaa_arg $ alpha_arg $ n_arg $ noise_arg)
  in
  Cmd.v
    (Cmd.info "gen-measurements"
       ~doc:"Generate a synthetic noisy NBTI measurement CSV from known ground truth.")
    term

(* --- serve / request: the aging-analysis daemon and its client --- *)

let endpoint_conv =
  let parse s = match Server.Service.endpoint_of_string s with Ok e -> Ok e | Error m -> Error (`Msg m) in
  let print fmt e = Format.pp_print_string fmt (Server.Netline.endpoint_to_string e) in
  Arg.conv (parse, print)

let endpoint_arg =
  let doc =
    "Service endpoint: a Unix socket path (optionally prefixed unix:) or tcp:HOST:PORT."
  in
  Arg.(required & opt (some endpoint_conv) None & info [ "s"; "socket" ] ~docv:"ENDPOINT" ~doc)

let faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~env:(Cmd.Env.info "NBTI_FAULTS")
        ~doc:
          "Fault-injection plan for chaos testing: comma-separated site=action[:param][@N] \
           rules (sites: admission, compute, write on serve; connect, probe, handoff on \
           route; actions: delay:MS, fail, truncate, shed).")

let parse_faults ~cmd = function
  | None -> Server.Faults.none
  | Some spec -> begin
    match Server.Faults.parse spec with
    | Ok f -> f
    | Error m ->
      Format.eprintf "nbti_tool %s: bad --faults plan: %s@." cmd m;
      exit 2
  end

let serve_cmd =
  let result_cache_arg =
    Arg.(value & opt int 256 & info [ "result-cache" ] ~docv:"N" ~doc:"Result cache entries.")
  in
  let result_cache_mb_arg =
    Arg.(
      value & opt int 64
      & info [ "result-cache-mb" ] ~docv:"MB" ~doc:"Approximate result cache byte budget.")
  in
  let prepared_cache_arg =
    Arg.(value & opt int 32 & info [ "prepared-cache" ] ~docv:"N" ~doc:"Prepared-pipeline cache entries.")
  in
  let max_pending_arg =
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N" ~doc:"Concurrent requests before overload.")
  in
  let max_batch_arg =
    Arg.(
      value
      & opt int Server.Service.default_limits.Server.Service.max_batch_jobs
      & info [ "max-batch" ] ~docv:"N" ~doc:"Most jobs accepted in one batch request.")
  in
  let max_gates_arg =
    Arg.(
      value
      & opt int Server.Service.default_limits.Server.Service.max_gates
      & info [ "max-gates" ] ~docv:"N" ~doc:"Largest accepted netlist (gate count).")
  in
  let max_line_bytes_arg =
    Arg.(
      value
      & opt int Server.Service.default_limits.Server.Service.max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"BYTES" ~doc:"Longest accepted request line.")
  in
  let default_timeout_arg =
    Arg.(
      value & opt (some int) None
      & info [ "default-timeout-ms" ] ~docv:"MS"
          ~doc:"Compute budget applied to requests that carry no timeout_ms of their own.")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt int 5000
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM, stop accepting and wait up to $(docv) for in-flight requests to \
             finish before the socket closes (graceful drain; SIGINT stops immediately).")
  in
  let access_log_arg =
    Arg.(
      value & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per handled request (ts, correlation id, endpoint, ok, \
             elapsed_s, error code) to $(docv).")
  in
  let run endpoint result_capacity result_cache_mb prepared_capacity max_pending max_batch
      max_gates max_line_bytes default_timeout_ms drain_timeout_ms faults_spec access_log
      slo_spec trace_spans level json jobs =
    apply_jobs jobs;
    apply_logging level json;
    let faults = parse_faults ~cmd:"serve" faults_spec in
    let slo = parse_slo ~cmd:"serve" slo_spec in
    if trace_spans > 0 then Obs.Trace.install (Obs.Trace.create ~capacity:trace_spans ());
    let limits =
      {
        Server.Service.default_limits with
        Server.Service.max_batch_jobs = max_batch;
        max_gates;
        max_line_bytes;
        default_timeout_ms;
      }
    in
    let t =
      Server.Service.create ~result_capacity
        ~result_max_bytes:(result_cache_mb * 1024 * 1024)
        ~prepared_capacity ~max_pending ~drain_timeout_ms ~limits ~faults ?slo ()
    in
    let access_oc =
      match access_log with
      | None -> None
      | Some path -> begin
        match open_out_gen [ Open_append; Open_creat ] 0o644 path with
        | oc ->
          Server.Service.set_access_log t oc;
          Some oc
        | exception Sys_error m ->
          Format.eprintf "nbti_tool serve: cannot open access log: %s@." m;
          exit 1
      end
    in
    Server.Service.install_signal_handlers t;
    (* Surface the bench-measured scaling advice next to what this host
       actually runs with, so an operator can spot a mis-sized pool
       (e.g. NBTI_JOBS from a stale deployment) at startup. *)
    let pool_domains = Parallel.Pool.domains (Parallel.Pool.default ()) in
    (* Whether the edit-heavy request paths (IVC search, co-optimization,
       gate sizing) run on resident incremental sessions or fall back to
       full passes — an operator toggling NBTI_INCREMENTAL should see
       the effect at startup, not infer it from latency. *)
    Obs.Log.info
      ~fields:[ ("enabled", Obs.Fields.Bool (Compiled.Incremental.enabled ())) ]
      "serve: incremental sessions";
    (match
       (try
          match
            List.find_opt Sys.file_exists
              [ "BENCH_PR8.json"; "BENCH_PR7.json"; "BENCH_PR6.json" ]
          with
          | Some bench_file ->
            let ic = open_in_bin bench_file in
            let len = in_channel_length ic in
            let body = really_input_string ic len in
            close_in_noerr ic;
            Server.Json.member_opt "recommended_domains" (Server.Json.of_string body)
            |> Option.map Server.Json.to_int
          | None -> None
        with _ -> None)
     with
    | Some rec_domains ->
      Obs.Log.info
        ~fields:
          [
            ("domains", Obs.Fields.Int pool_domains);
            ("recommended_domains", Obs.Fields.Int rec_domains);
          ]
        "serve: worker pool"
    | None ->
      Obs.Log.info ~fields:[ ("domains", Obs.Fields.Int pool_domains) ] "serve: worker pool");
    let on_ready () =
      (match endpoint with
      | Server.Service.Unix_socket p -> Format.printf "nbti_tool: serving on unix:%s@." p
      | Server.Service.Tcp (h, p) -> Format.printf "nbti_tool: serving on tcp:%s:%d@." h p);
      if not (Server.Faults.is_empty faults) then
        Format.printf "fault injection armed: %s@."
          (Server.Json.to_string (Server.Faults.to_json faults));
      Format.printf "protocol v%d; SIGINT stops, SIGTERM drains (up to %d ms)@."
        Server.Protocol.version drain_timeout_ms
    in
    (try Server.Service.serve t endpoint ~on_ready () with
    | Unix.Unix_error (err, fn, arg) ->
      Format.eprintf "nbti_tool serve: %s(%s): %s@." fn arg (Unix.error_message err);
      exit 1);
    (match access_oc with Some oc -> close_out_noerr oc | None -> ());
    Format.printf "nbti_tool: server stopped@."
  in
  let term =
    Term.(
      const run $ endpoint_arg $ result_cache_arg $ result_cache_mb_arg $ prepared_cache_arg
      $ max_pending_arg $ max_batch_arg $ max_gates_arg $ max_line_bytes_arg
      $ default_timeout_arg $ drain_timeout_arg $ faults_arg $ access_log_arg $ slo_spec_arg
      $ trace_spans_arg $ log_level_arg $ log_json_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the aging-analysis daemon: newline-delimited JSON requests over a socket.")
    term

let request_cmd =
  let body_arg =
    let doc =
      "Request: a raw JSON object (versioned protocol), a circuit name (shorthand for a default \
       analyze request), or - to read one JSON request per line from stdin."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REQUEST" ~doc)
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transient failures (overloaded server, lost or truncated connections) up to \
             N times with jittered exponential backoff; every protocol operation is idempotent, \
             so retrying is always safe.")
  in
  let timeout_ms_arg =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request compute budget, injected as timeout_ms into requests that do not \
             already carry one; the server answers deadline_exceeded when it runs out.")
  in
  let retry_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:"Seed for the deterministic backoff jitter (reproducible retry schedules).")
  in
  let request_line body =
    let is_json = String.length body > 0 && (body.[0] = '{' || body.[0] = '[') in
    if is_json then body
    else
      (* shorthand: a circuit name (or .bench path) becomes a default analyze *)
      let circuit =
        if Sys.file_exists body then begin
          let ic = open_in body in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Server.Json.Assoc [ ("bench", Server.Json.String text) ]
        end
        else Server.Json.String body
      in
      Server.Json.to_string
        (Server.Json.Assoc
           [
             ("v", Server.Json.Int Server.Protocol.version);
             ("op", Server.Json.String "analyze");
             ("circuit", circuit);
           ])
  in
  let run endpoint body retries timeout_ms retry_seed trace =
    let policy = { Server.Retry.default_policy with Server.Retry.retries } in
    let rng = Physics.Rng.split (Physics.Rng.create ~seed:retry_seed) in
    let collector =
      match trace with
      | None -> None
      | Some _ ->
        let c = Obs.Trace.create () in
        Obs.Trace.install c;
        Some c
    in
    (* A deadline-bounded request must not hang the client on a wedged
       server: bound the read at several times the compute budget (the
       server itself answers within ~2x). *)
    let read_timeout_s =
      Option.map (fun ms -> Float.max 5.0 (4.0 *. float_of_int ms /. 1000.0)) timeout_ms
    in
    let client = Server.Client.create ?read_timeout_s endpoint in
    (* Inject the --timeout-ms budget into requests that do not already
       carry one; raw JSON bodies keep whatever they say. *)
    let with_timeout line =
      match timeout_ms with
      | None -> line
      | Some ms -> begin
        match Server.Json.of_string line with
        | Server.Json.Assoc kvs when not (List.mem_assoc "timeout_ms" kvs) ->
          Server.Json.to_string (Server.Json.Assoc (kvs @ [ ("timeout_ms", Server.Json.Int ms) ]))
        | _ -> line
        | exception Server.Json.Parse_error _ -> line
      end
    in
    let ok = ref true in
    let print_response response =
      print_endline response;
      match Server.Json.(member_opt "ok" (of_string response)) with
      | Some (Server.Json.Bool true) -> ()
      | _ -> ok := false
      | exception _ -> ok := false
    in
    let on_retry ~attempt ~reason ~sleep_ms =
      Format.eprintf "nbti_tool request: %s; retry %d/%d in %d ms@." reason (attempt + 1)
        policy.Server.Retry.retries sleep_ms
    in
    let send line =
      let go () =
        match Server.Client.call client ~policy ~rng ~on_retry (with_timeout line) with
        | Ok response -> print_response response
        | Error { Server.Client.attempts; reason; last_response } ->
          Format.eprintf "nbti_tool request: giving up after %d attempt%s: %s@." attempts
            (if attempts = 1 then "" else "s")
            reason;
          (* still surface the server's final word (e.g. the overloaded
             error envelope) so callers can inspect it *)
          (match last_response with Some r -> print_endline r | None -> ());
          ok := false
      in
      (* A traced request originates the distributed trace here, at the
         client edge: the cli.request span is the trace root, and
         Client.call stamps the context onto the wire so router and
         backend spans nest under it in a merged view. *)
      if Obs.Trace.enabled () then
        Obs.Ctx.with_trace
          { Obs.Ctx.trace_id = Obs.Trace.new_trace_id (); parent_span = None }
          (fun () -> Obs.Trace.with_span ~cat:"client" "cli.request" go)
      else go ()
    in
    if body = "-" then begin
      try
        while true do
          let line = input_line stdin in
          if String.trim line <> "" then send line
        done
      with End_of_file -> ()
    end
    else send (request_line body);
    Server.Client.close client;
    (match (trace, collector) with
    | Some path, Some c ->
      Obs.Trace.uninstall ();
      (try
         Obs.Trace.write_chrome_json ~process_name:"client" c ~path;
         Format.eprintf "trace: %d spans written to %s@." (List.length (Obs.Trace.spans c)) path
       with Sys_error m -> Format.eprintf "trace: cannot write %s: %s@." path m)
    | _ -> ());
    if not !ok then exit 1
  in
  let request_trace_arg =
    let doc =
      "Record this client's spans (one cli.request root per request, carrying a fresh trace \
       id that the server side joins) as Chrome trace_event JSON to $(docv); merge with the \
       server's trace via 'nbti_tool trace --merge'."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let term =
    Term.(
      const run $ endpoint_arg $ body_arg $ retries_arg $ timeout_ms_arg $ retry_seed_arg
      $ request_trace_arg)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request (or stdin lines with -) to a running analysis daemon.")
    term

let route_cmd =
  let backends_arg =
    let doc =
      "Backend daemon endpoint (repeatable). Requests are consistent-hash routed across all \
       backends by netlist digest + platform fingerprint."
    in
    Arg.(non_empty & opt_all endpoint_conv [] & info [ "b"; "backend" ] ~docv:"ENDPOINT" ~doc)
  in
  let vnodes_arg =
    Arg.(
      value & opt int Fleet.Router.default_config.Fleet.Router.vnodes
      & info [ "vnodes" ] ~docv:"N" ~doc:"Virtual nodes per backend on the hash ring.")
  in
  let failover_arg =
    Arg.(
      value & opt int Fleet.Router.default_config.Fleet.Router.failover_attempts
      & info [ "failover-attempts" ] ~docv:"N"
          ~doc:
            "Most backends tried per request before answering fleet_degraded (every routed op \
             is idempotent, so rehash-and-retry is safe).")
  in
  let probe_interval_arg =
    Arg.(
      value & opt int Fleet.Router.default_config.Fleet.Router.probe_interval_ms
      & info [ "probe-interval-ms" ] ~docv:"MS"
          ~doc:
            "Health-probe cadence for healthy backends; failing ones back off exponentially \
             with jitter up to --probe-backoff-cap-ms.")
  in
  let probe_cap_arg =
    Arg.(
      value & opt int Fleet.Router.default_config.Fleet.Router.probe_backoff_cap_ms
      & info [ "probe-backoff-cap-ms" ] ~docv:"MS" ~doc:"Probe backoff ceiling.")
  in
  let probe_timeout_arg =
    Arg.(
      value & opt int Fleet.Router.default_config.Fleet.Router.probe_timeout_ms
      & info [ "probe-timeout-ms" ] ~docv:"MS" ~doc:"Per-probe read timeout.")
  in
  let handoff_entries_arg =
    Arg.(
      value & opt int Fleet.Router.default_config.Fleet.Router.handoff_max_entries
      & info [ "handoff-entries" ] ~docv:"N"
          ~doc:"Hottest result-cache entries moved per warm-cache handoff export.")
  in
  let run endpoint backends vnodes failover_attempts probe_interval_ms probe_backoff_cap_ms
      probe_timeout_ms handoff_max_entries faults_spec access_log slo_spec trace trace_spans
      level json =
    apply_logging level json;
    let faults = parse_faults ~cmd:"route" faults_spec in
    let slo = parse_slo ~cmd:"route" slo_spec in
    (* --trace implies a collector; --trace-spans sizes it (and enables
       trace_export without a shutdown file when given alone). *)
    let collector =
      if trace <> None || trace_spans > 0 then begin
        let c =
          if trace_spans > 0 then Obs.Trace.create ~capacity:trace_spans ()
          else Obs.Trace.create ()
        in
        Obs.Trace.install c;
        Some c
      end
      else None
    in
    let config =
      {
        Fleet.Router.default_config with
        Fleet.Router.vnodes;
        failover_attempts;
        probe_interval_ms;
        probe_backoff_cap_ms;
        probe_timeout_ms;
        handoff_max_entries;
      }
    in
    let t =
      try Fleet.Router.create ~config ~faults ?slo backends
      with Invalid_argument m ->
        Format.eprintf "nbti_tool route: %s@." m;
        exit 2
    in
    let access_oc =
      match access_log with
      | None -> None
      | Some path -> begin
        match open_out_gen [ Open_append; Open_creat ] 0o644 path with
        | oc ->
          Fleet.Router.set_access_log t oc;
          Some oc
        | exception Sys_error m ->
          Format.eprintf "nbti_tool route: cannot open access log: %s@." m;
          exit 1
      end
    in
    Fleet.Router.install_signal_handlers t;
    let on_ready () =
      Format.printf "nbti_tool: routing on %s across %d backend%s@."
        (Server.Netline.endpoint_to_string endpoint)
        (List.length backends)
        (if List.length backends = 1 then "" else "s");
      List.iter
        (fun b -> Format.printf "  backend %s@." (Server.Netline.endpoint_to_string b))
        backends;
      if not (Server.Faults.is_empty faults) then
        Format.printf "fault injection armed: %s@."
          (Server.Json.to_string (Server.Faults.to_json faults));
      Format.printf "protocol v%d; stop with SIGINT/SIGTERM@." Server.Protocol.version
    in
    (try Fleet.Router.serve t endpoint ~on_ready () with
    | Unix.Unix_error (err, fn, arg) ->
      Format.eprintf "nbti_tool route: %s(%s): %s@." fn arg (Unix.error_message err);
      exit 1);
    (* Shutdown-time trace collection: the backends are still serving
       (the router stops first in a rolling shutdown), so drain their
       span rings and write the whole fleet as one merged trace. *)
    (match (trace, collector) with
    | Some path, Some c ->
      Obs.Trace.uninstall ();
      let own = Server.Json.of_string (Obs.Trace.to_chrome_json ~process_name:"router" c) in
      let backend_traces = Fleet.Router.collect_backend_traces t in
      let inputs =
        (None, own) :: List.map (fun (name, tr) -> (Some name, tr)) backend_traces
      in
      (try
         let merged = Server.Tracefile.merge inputs in
         let oc = open_out path in
         output_string oc (Server.Json.to_string merged);
         output_char oc '\n';
         close_out oc;
         Format.eprintf "trace: merged router + %d backend trace%s to %s@."
           (List.length backend_traces)
           (if List.length backend_traces = 1 then "" else "s")
           path
       with
      | Server.Json.Type_error m -> Format.eprintf "trace: merge failed: %s@." m
      | Sys_error m -> Format.eprintf "trace: cannot write %s: %s@." path m)
    | _ -> ());
    (match access_oc with Some oc -> close_out_noerr oc | None -> ());
    Format.printf "nbti_tool: router stopped@."
  in
  let route_trace_arg =
    let doc =
      "Record router spans and, at shutdown, drain every backend's span ring (trace_export) \
       and write the whole fleet as one merged Chrome trace to $(docv). Backends must run \
       with --trace-spans to participate."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let route_access_log_arg =
    Arg.(
      value & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per routed request (ts, correlation id, endpoint, ok, \
             elapsed_s, error code, plus backend, failover_count and coalesced) to $(docv).")
  in
  let term =
    Term.(
      const run $ endpoint_arg $ backends_arg $ vnodes_arg $ failover_arg $ probe_interval_arg
      $ probe_cap_arg $ probe_timeout_arg $ handoff_entries_arg $ faults_arg
      $ route_access_log_arg $ slo_spec_arg $ route_trace_arg $ trace_spans_arg $ log_level_arg
      $ log_json_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the fleet router: consistent-hash route requests across backend daemons with \
          singleflight coalescing, health-probe failover and warm-cache handoff.")
    term

(* --- top: one-shot / interval text dashboard over a daemon's stats --- *)

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 0.0
      & info [ "interval" ] ~docv:"S"
          ~doc:"Refresh every $(docv) seconds (clearing the screen) instead of one-shot.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"With --interval, stop after $(docv) refreshes (0 = until interrupted).")
  in
  let str name j =
    match Server.Json.member_opt name j with Some (Server.Json.String s) -> Some s | _ -> None
  in
  let num name j =
    match Server.Json.member_opt name j with
    | Some v -> ( try Some (Server.Json.to_float v) with Server.Json.Type_error _ -> None)
    | None -> None
  in
  let ms name j = match num name j with Some s -> s *. 1e3 | None -> Float.nan in
  let fmt v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
  let fmt_int v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v in
  let render endpoint result =
    let role = Option.value ~default:"backend" (str "role" result) in
    let uptime = Option.value ~default:Float.nan (num "uptime_s" result) in
    Format.printf "%s — %s, up %.1f s@.@."
      (Server.Netline.endpoint_to_string endpoint)
      role uptime;
    (match Server.Json.member_opt "backends" result with
    | Some (Server.Json.List backends) when backends <> [] ->
      Flow.Report.print
        {
          Flow.Report.title = "backends";
          header =
            [ "endpoint"; "state"; "probes"; "failures"; "rtt p50 [ms]"; "rtt p95 [ms]" ];
          rows =
            List.map
              (fun b ->
                let rtt = Server.Json.member_opt "probe_rtt" b in
                (* probe_rtt fields are already in milliseconds *)
                let rtt_ms name =
                  match rtt with
                  | Some r -> fmt (Option.value ~default:Float.nan (num name r))
                  | None -> "-"
                in
                [
                  Option.value ~default:"?" (str "endpoint" b);
                  Option.value ~default:"?" (str "state" b);
                  fmt_int (Option.value ~default:Float.nan (num "probes" b));
                  fmt_int (Option.value ~default:Float.nan (num "probe_failures" b));
                  rtt_ms "p50_ms";
                  rtt_ms "p95_ms";
                ])
              backends;
        };
      Format.printf "@."
    | _ -> ());
    (match Server.Json.member_opt "endpoints" result with
    | Some (Server.Json.Assoc endpoints) when endpoints <> [] ->
      Flow.Report.print
        {
          Flow.Report.title = "per-op latency";
          header = [ "op"; "requests"; "errors"; "p50 [ms]"; "p95 [ms]"; "p99 [ms]" ];
          rows =
            List.map
              (fun (op, s) ->
                [
                  op;
                  fmt_int (Option.value ~default:Float.nan (num "requests" s));
                  fmt_int (Option.value ~default:Float.nan (num "errors" s));
                  fmt (ms "p50_s" s);
                  fmt (ms "p95_s" s);
                  fmt (ms "p99_s" s);
                ])
              endpoints;
        };
      Format.printf "@."
    | _ -> ());
    match Server.Json.member_opt "slo" result with
    | Some (Server.Json.List objectives) when objectives <> [] ->
      let window_burn label o =
        match Server.Json.member_opt "windows" o with
        | Some (Server.Json.List ws) -> begin
          match List.find_opt (fun w -> str "window" w = Some label) ws with
          | Some w -> fmt (Option.value ~default:Float.nan (num "burn_rate" w))
          | None -> "-"
        end
        | _ -> "-"
      in
      Flow.Report.print
        {
          Flow.Report.title = "SLO burn rates (1.0 = burning the whole error budget)";
          header = [ "op"; "threshold [ms]"; "target [%]"; "5m burn"; "1h burn" ];
          rows =
            List.map
              (fun o ->
                [
                  Option.value ~default:"?" (str "op" o);
                  fmt (Option.value ~default:Float.nan (num "threshold_ms" o));
                  fmt (Option.value ~default:Float.nan (num "target_pct" o));
                  window_burn "5m" o;
                  window_burn "1h" o;
                ])
              objectives;
        }
    | _ -> ()
  in
  let run endpoint interval count =
    let client = Server.Client.create ~read_timeout_s:10.0 endpoint in
    let stats_line =
      Server.Json.to_string
        (Server.Json.Assoc
           [
             ("v", Server.Json.Int Server.Protocol.version);
             ("op", Server.Json.String "stats");
           ])
    in
    let fetch () =
      match Server.Client.call client stats_line with
      | Ok response -> begin
        match Server.Json.of_string response with
        | json -> begin
          match (Server.Json.member_opt "ok" json, Server.Json.member_opt "result" json) with
          | Some (Server.Json.Bool true), Some result -> Ok result
          | _ -> Error response
        end
        | exception Server.Json.Parse_error m -> Error ("unparseable response: " ^ m)
      end
      | Error { Server.Client.reason; _ } -> Error reason
    in
    let rec loop i =
      if interval > 0.0 then print_string "\027[2J\027[H";
      (match fetch () with
      | Ok result -> render endpoint result
      | Error m ->
        Format.eprintf "nbti_tool top: %s@." m;
        if interval <= 0.0 then begin
          Server.Client.close client;
          exit 1
        end);
      if interval > 0.0 && (count = 0 || i + 1 < count) then begin
        Thread.delay interval;
        loop (i + 1)
      end
    in
    loop 0;
    Server.Client.close client
  in
  let term = Term.(const run $ endpoint_arg $ interval_arg $ count_arg) in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Text dashboard over a daemon or router's stats: backend health, per-op latency \
          percentiles and SLO burn rates, one-shot or refreshing with --interval.")
    term

let () =
  let doc = "Temperature-aware NBTI modeling and standby leakage co-optimization." in
  let info = Cmd.info "nbti_tool" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ stats_cmd; analyze_cmd; ivc_cmd; st_cmd; dvth_cmd; lifetime_cmd; gen_cmd; lib_cmd;
         verilog_cmd; seq_cmd; sram_cmd; thermal_cmd; variation_cmd; profile_cmd; trace_cmd;
         calibrate_cmd; gen_measurements_cmd; serve_cmd; request_cmd; route_cmd; top_cmd ]))
