#!/bin/sh
# Fleet smoke: a router in front of three backend daemons, driven over
# real sockets. Asserts that (1) identical concurrent requests coalesce
# to one backend flight, (2) a batch keeps succeeding — zero failed
# requests — while one backend is SIGKILLed mid-stream, with the
# failover recorded, (3) the killed backend comes back, receives a
# warm-cache handoff, and then answers its keys from cache, and
# (4) every routed answer is byte-identical to a single-backend run
# (modulo the cached flag).
#
# Observability assertions ride the same fleet: the backends run with
# span rings and the router with --trace/--access-log/--slo, so the run
# also checks (5) metrics federation (cluster_metrics carries
# per-backend-labelled families, fleet-merged latency histograms, probe
# RTT gauges and SLO burn rates), (6) the router access log records
# backend / failover_count / coalesced per request, and (7) a client's
# trace id survives client -> router -> backend: at shutdown the router
# drains every backend's span ring into one merged Chrome trace, which
# `nbti_tool trace --merge` stitches with the client's own trace into a
# single validated timeline that still contains the failover hop.
set -eu

TOOL=${TOOL:-./_build/default/bin/nbti_tool.exe}
WORK=$(mktemp -d /tmp/nbti_fleet.XXXXXX)
B1="$WORK/b1.sock"
B2="$WORK/b2.sock"
B3="$WORK/b3.sock"
ROUTER="$WORK/router.sock"
SINGLE="$WORK/single.sock"

fail() {
    echo "fleet-smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$TOOL" ] || fail "$TOOL not built (run dune build first)"

PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_sock() {
    i=0
    while [ ! -S "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "no listener appeared on $1"
        sleep 0.1
    done
}

start_backend() {
    "$TOOL" serve -s "$1" --trace-spans 4096 --log-level error &
    eval "$2=\$!"
    PIDS="$PIDS $!"
    wait_sock "$1"
}

start_backend "$B1" B1_PID
start_backend "$B2" B2_PID
start_backend "$B3" B3_PID

# Fast probes so the router notices the kill and the resurrection
# within a couple of seconds rather than the production cadence.
FLEET_TRACE="$WORK/fleet_trace.json"
ACCESS_LOG="$WORK/access.jsonl"
"$TOOL" route -s "$ROUTER" -b "$B1" -b "$B2" -b "$B3" \
    --probe-interval-ms 200 --probe-backoff-cap-ms 800 \
    --trace "$FLEET_TRACE" --access-log "$ACCESS_LOG" --slo "analyze=60s:99" \
    --log-level error &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_sock "$ROUTER"

stat_counter() {
    # first "name":N occurrence in the router's stats response
    "$TOOL" request -s "$ROUTER" '{"v":1,"op":"stats"}' 2>/dev/null \
        | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

# --- 1. singleflight: two identical concurrent requests, one compute ---
# A fresh key, slowed by an artificial 1.5 year horizon? No: slow it by
# asking for the larger c1355 so the leader's flight is open when the
# follower arrives.
COALESCE_REQ='{"v":1,"op":"analyze","circuit":"c1355","config":{"years":4.5}}'
"$TOOL" request -s "$ROUTER" "$COALESCE_REQ" > "$WORK/co1.out" 2>/dev/null &
CO1=$!
"$TOOL" request -s "$ROUTER" "$COALESCE_REQ" > "$WORK/co2.out" 2>/dev/null &
CO2=$!
wait "$CO1" || fail "first coalesced request failed"
wait "$CO2" || fail "second coalesced request failed"
cmp -s "$WORK/co1.out" "$WORK/co2.out" || fail "coalesced requests returned different bytes"
COALESCED=$(stat_counter coalesced)
[ "${COALESCED:-0}" -ge 1 ] || fail "no coalesced request recorded (got '${COALESCED:-}')"

# --- 2. batch with a mid-stream backend kill: zero failed requests ---
REQS="$WORK/reqs.jsonl"
: > "$REQS"
for y in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do
    echo "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\",\"config\":{\"years\":$y}}" >> "$REQS"
done

PIPE="$WORK/pipe"
mkfifo "$PIPE"
"$TOOL" request -s "$ROUTER" - --retries 8 --retry-seed 11 \
    < "$PIPE" > "$WORK/batch.out" 2> "$WORK/batch.err" &
CLIENT_PID=$!
exec 3> "$PIPE"
head -n 15 "$REQS" >&3
# let the first half land, then crash a backend hard (no drain, no
# goodbye): its keys must fail over with no failed client request
sleep 1
kill -9 "$B2_PID"
tail -n 15 "$REQS" >&3
exec 3>&-
wait "$CLIENT_PID" || fail "batch client exited non-zero (a request failed despite failover)"
OK_COUNT=$(grep -c '"ok":true' "$WORK/batch.out" || true)
[ "$OK_COUNT" -eq 30 ] || fail "expected 30 ok responses, got $OK_COUNT"
grep -q '"ok":false' "$WORK/batch.out" && fail "batch contains a failed response"

# the router must have noticed: at least one failover, backend marked dead
FAILOVERS=$(stat_counter failovers)
[ "${FAILOVERS:-0}" -ge 1 ] || fail "no failover recorded (got '${FAILOVERS:-}')"

# --- 3. resurrection + warm-cache handoff ---
# The warm handoff only runs on a down -> recovering transition, so the
# probe loop must confirm the kill before the backend comes back: if the
# resurrection wins that race, the next probe flips suspect -> up and no
# handoff is owed. Wait for the router to report the backend down.
i=0
until "$TOOL" request -s "$ROUTER" '{"v":1,"op":"stats"}' 2>/dev/null \
        | grep -q '"state":"down"'; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "router never confirmed the killed backend down"
    sleep 0.1
done
"$TOOL" serve -s "$B2" --trace-spans 4096 --log-level error &
B2_PID=$!
PIDS="$PIDS $B2_PID"
wait_sock "$B2"
# wait for the router to probe it back up and run the handoff
i=0
while :; do
    HANDOFF_KEYS=$(stat_counter handoff_keys)
    [ "${HANDOFF_KEYS:-0}" -ge 1 ] && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "no warm-cache handoff after backend resurrection"
    sleep 0.1
done

# Every post-kill key is now cached at its owner: keys the resurrected
# backend owns were computed on its peers during failover and can only
# be warm on it via the handoff; the rest sit where they were computed.
# (Keys owned by the killed backend from BEFORE the kill died with its
# cache — that loss is expected, so only the post-kill half asserts.)
tail -n 15 "$REQS" > "$WORK/tail.jsonl"
"$TOOL" request -s "$ROUTER" - --retries 8 < "$WORK/tail.jsonl" > "$WORK/tailrun.out" 2>/dev/null \
    || fail "re-run through the healed fleet failed"
CACHED=$(grep -c '"cached":true' "$WORK/tailrun.out" || true)
[ "$CACHED" -eq 15 ] || fail "expected all 15 post-kill keys cached after handoff, got $CACHED"

# --- 3b. a traced client request joins the distributed trace ---
CLIENT_TRACE="$WORK/client_trace.json"
"$TOOL" request -s "$ROUTER" --trace "$CLIENT_TRACE" \
    '{"v":1,"op":"analyze","circuit":"c432"}' > "$WORK/traced.out" 2>/dev/null \
    || fail "traced client request failed"
grep -q '"ok":true' "$WORK/traced.out" || fail "traced request answered an error"
[ -s "$CLIENT_TRACE" ] || fail "client --trace wrote no file"
CLIENT_TID=$(sed -n 's/.*"trace_id":"\([0-9a-f]\{32\}\)".*/\1/p' "$CLIENT_TRACE" | head -n 1)
[ -n "$CLIENT_TID" ] || fail "client trace carries no trace_id"

# --- 3c. metrics federation + SLO burn rates via cluster_metrics ---
# let at least one post-traffic probe pass scrape the backends
sleep 0.5
"$TOOL" request -s "$ROUTER" '{"v":1,"op":"cluster_metrics"}' > "$WORK/cluster.json" 2>/dev/null \
    || fail "cluster_metrics request failed"
grep -q 'backend=' "$WORK/cluster.json" \
    || fail "cluster_metrics carries no per-backend-labelled families"
grep -q 'nbti_fleet_request_latency_seconds' "$WORK/cluster.json" \
    || fail "cluster_metrics carries no fleet-merged latency histogram"
grep -q 'nbti_fleet_probe_rtt_seconds' "$WORK/cluster.json" \
    || fail "cluster_metrics carries no probe RTT gauges"
grep -q 'nbti_slo_burn_rate' "$WORK/cluster.json" \
    || fail "cluster_metrics carries no SLO burn rates"

# probe RTT percentiles must also show up in the router's stats
"$TOOL" request -s "$ROUTER" '{"v":1,"op":"stats"}' > "$WORK/stats.json" 2>/dev/null \
    || fail "router stats request failed"
grep -q '"probe_rtt"' "$WORK/stats.json" || fail "router stats carry no probe_rtt block"
grep -q '"slo"' "$WORK/stats.json" || fail "router stats carry no slo block"

# --- 3d. access log: routing fields on every record ---
[ -s "$ACCESS_LOG" ] || fail "router wrote no access log"
grep -q '"backend":' "$ACCESS_LOG" || fail "access log has no backend field"
grep -q '"failover_count":' "$ACCESS_LOG" || fail "access log has no failover_count field"
grep -q '"coalesced":' "$ACCESS_LOG" || fail "access log has no coalesced field"
grep -q '"coalesced":true' "$ACCESS_LOG" || fail "access log never recorded a coalesced request"
awk '{ if ($0 !~ /"failover_count":/) exit 1 }' "$ACCESS_LOG" \
    || fail "an access-log record is missing failover_count"

# --- 4. byte-identity vs a single-backend run ---
"$TOOL" request -s "$ROUTER" - --retries 8 < "$REQS" > "$WORK/rerun.out" 2>/dev/null \
    || fail "full re-run through the healed fleet failed"
"$TOOL" serve -s "$SINGLE" --log-level error &
SINGLE_PID=$!
PIDS="$PIDS $SINGLE_PID"
wait_sock "$SINGLE"
"$TOOL" request -s "$SINGLE" - < "$REQS" > "$WORK/direct.out" 2>/dev/null \
    || fail "single-backend reference run failed"
sed 's/,"cached":true//g; s/,"cached":false//g' "$WORK/rerun.out" > "$WORK/rerun.norm"
sed 's/,"cached":true//g; s/,"cached":false//g' "$WORK/direct.out" > "$WORK/direct.norm"
cmp -s "$WORK/rerun.norm" "$WORK/direct.norm" \
    || fail "routed answers differ from the single-backend run"

# --- 5. graceful shutdown end to end ---
# The router stops first: its shutdown drains every backend's span ring
# (the backends are still serving) and writes the merged fleet trace.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || fail "router exited non-zero"
[ -s "$FLEET_TRACE" ] || fail "router wrote no merged fleet trace at shutdown"
for pid in "$B1_PID" "$B2_PID" "$B3_PID" "$SINGLE_PID"; do
    kill -TERM "$pid"
    wait "$pid" || fail "a backend exited non-zero on SIGTERM drain"
done

# --- 6. one flame graph of the whole fleet ---
# Stitch the client's own trace onto the router+backends merge and
# validate the result; the client's trace id must appear on the fleet
# side (propagated client -> router -> backend), and the mid-batch kill
# must be visible as a failover hop (a forward attempt beyond the
# first owner).
grep -q "$CLIENT_TID" "$FLEET_TRACE" \
    || fail "client trace id $CLIENT_TID did not propagate into the fleet trace"
grep -q 'fleet.forward' "$FLEET_TRACE" || fail "no forward spans in the fleet trace"
grep -q '"attempt":1' "$FLEET_TRACE" \
    || fail "no failover hop (attempt > 0) recorded in the fleet trace"
MERGED="$WORK/request_flame.json"
"$TOOL" trace --merge "$MERGED" "$CLIENT_TRACE" "$FLEET_TRACE" > "$WORK/merge.out" 2>&1 \
    || fail "trace --merge failed: $(cat "$WORK/merge.out")"
"$TOOL" trace "$MERGED" > "$WORK/validate.out" 2>&1 \
    || fail "merged trace does not validate: $(cat "$WORK/validate.out")"
grep -q 'client' "$WORK/validate.out" || fail "merged trace lost the client process lane"
grep -q 'router' "$WORK/validate.out" || fail "merged trace lost the router process lane"

echo "fleet-smoke: OK (coalesced=$COALESCED failovers=$FAILOVERS handoff_keys=$HANDOFF_KEYS; 30/30 ok through a mid-batch kill; byte-identical to single backend; merged trace + federation + SLO asserted)"
