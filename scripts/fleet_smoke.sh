#!/bin/sh
# Fleet smoke: a router in front of three backend daemons, driven over
# real sockets. Asserts that (1) identical concurrent requests coalesce
# to one backend flight, (2) a batch keeps succeeding — zero failed
# requests — while one backend is SIGKILLed mid-stream, with the
# failover recorded, (3) the killed backend comes back, receives a
# warm-cache handoff, and then answers its keys from cache, and
# (4) every routed answer is byte-identical to a single-backend run
# (modulo the cached flag).
set -eu

TOOL=${TOOL:-./_build/default/bin/nbti_tool.exe}
WORK=$(mktemp -d /tmp/nbti_fleet.XXXXXX)
B1="$WORK/b1.sock"
B2="$WORK/b2.sock"
B3="$WORK/b3.sock"
ROUTER="$WORK/router.sock"
SINGLE="$WORK/single.sock"

fail() {
    echo "fleet-smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$TOOL" ] || fail "$TOOL not built (run dune build first)"

PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_sock() {
    i=0
    while [ ! -S "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "no listener appeared on $1"
        sleep 0.1
    done
}

start_backend() {
    "$TOOL" serve -s "$1" --log-level error &
    eval "$2=\$!"
    PIDS="$PIDS $!"
    wait_sock "$1"
}

start_backend "$B1" B1_PID
start_backend "$B2" B2_PID
start_backend "$B3" B3_PID

# Fast probes so the router notices the kill and the resurrection
# within a couple of seconds rather than the production cadence.
"$TOOL" route -s "$ROUTER" -b "$B1" -b "$B2" -b "$B3" \
    --probe-interval-ms 200 --probe-backoff-cap-ms 800 --log-level error &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_sock "$ROUTER"

stat_counter() {
    # first "name":N occurrence in the router's stats response
    "$TOOL" request -s "$ROUTER" '{"v":1,"op":"stats"}' 2>/dev/null \
        | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

# --- 1. singleflight: two identical concurrent requests, one compute ---
# A fresh key, slowed by an artificial 1.5 year horizon? No: slow it by
# asking for the larger c1355 so the leader's flight is open when the
# follower arrives.
COALESCE_REQ='{"v":1,"op":"analyze","circuit":"c1355","config":{"years":4.5}}'
"$TOOL" request -s "$ROUTER" "$COALESCE_REQ" > "$WORK/co1.out" 2>/dev/null &
CO1=$!
"$TOOL" request -s "$ROUTER" "$COALESCE_REQ" > "$WORK/co2.out" 2>/dev/null &
CO2=$!
wait "$CO1" || fail "first coalesced request failed"
wait "$CO2" || fail "second coalesced request failed"
cmp -s "$WORK/co1.out" "$WORK/co2.out" || fail "coalesced requests returned different bytes"
COALESCED=$(stat_counter coalesced)
[ "${COALESCED:-0}" -ge 1 ] || fail "no coalesced request recorded (got '${COALESCED:-}')"

# --- 2. batch with a mid-stream backend kill: zero failed requests ---
REQS="$WORK/reqs.jsonl"
: > "$REQS"
for y in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do
    echo "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\",\"config\":{\"years\":$y}}" >> "$REQS"
done

PIPE="$WORK/pipe"
mkfifo "$PIPE"
"$TOOL" request -s "$ROUTER" - --retries 8 --retry-seed 11 \
    < "$PIPE" > "$WORK/batch.out" 2> "$WORK/batch.err" &
CLIENT_PID=$!
exec 3> "$PIPE"
head -n 15 "$REQS" >&3
# let the first half land, then crash a backend hard (no drain, no
# goodbye): its keys must fail over with no failed client request
sleep 1
kill -9 "$B2_PID"
tail -n 15 "$REQS" >&3
exec 3>&-
wait "$CLIENT_PID" || fail "batch client exited non-zero (a request failed despite failover)"
OK_COUNT=$(grep -c '"ok":true' "$WORK/batch.out" || true)
[ "$OK_COUNT" -eq 30 ] || fail "expected 30 ok responses, got $OK_COUNT"
grep -q '"ok":false' "$WORK/batch.out" && fail "batch contains a failed response"

# the router must have noticed: at least one failover, backend marked dead
FAILOVERS=$(stat_counter failovers)
[ "${FAILOVERS:-0}" -ge 1 ] || fail "no failover recorded (got '${FAILOVERS:-}')"

# --- 3. resurrection + warm-cache handoff ---
"$TOOL" serve -s "$B2" --log-level error &
B2_PID=$!
PIDS="$PIDS $B2_PID"
wait_sock "$B2"
# wait for the router to probe it back up and run the handoff
i=0
while :; do
    HANDOFF_KEYS=$(stat_counter handoff_keys)
    [ "${HANDOFF_KEYS:-0}" -ge 1 ] && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "no warm-cache handoff after backend resurrection"
    sleep 0.1
done

# Every post-kill key is now cached at its owner: keys the resurrected
# backend owns were computed on its peers during failover and can only
# be warm on it via the handoff; the rest sit where they were computed.
# (Keys owned by the killed backend from BEFORE the kill died with its
# cache — that loss is expected, so only the post-kill half asserts.)
tail -n 15 "$REQS" > "$WORK/tail.jsonl"
"$TOOL" request -s "$ROUTER" - --retries 8 < "$WORK/tail.jsonl" > "$WORK/tailrun.out" 2>/dev/null \
    || fail "re-run through the healed fleet failed"
CACHED=$(grep -c '"cached":true' "$WORK/tailrun.out" || true)
[ "$CACHED" -eq 15 ] || fail "expected all 15 post-kill keys cached after handoff, got $CACHED"

# --- 4. byte-identity vs a single-backend run ---
"$TOOL" request -s "$ROUTER" - --retries 8 < "$REQS" > "$WORK/rerun.out" 2>/dev/null \
    || fail "full re-run through the healed fleet failed"
"$TOOL" serve -s "$SINGLE" --log-level error &
SINGLE_PID=$!
PIDS="$PIDS $SINGLE_PID"
wait_sock "$SINGLE"
"$TOOL" request -s "$SINGLE" - < "$REQS" > "$WORK/direct.out" 2>/dev/null \
    || fail "single-backend reference run failed"
sed 's/,"cached":true//g; s/,"cached":false//g' "$WORK/rerun.out" > "$WORK/rerun.norm"
sed 's/,"cached":true//g; s/,"cached":false//g' "$WORK/direct.out" > "$WORK/direct.norm"
cmp -s "$WORK/rerun.norm" "$WORK/direct.norm" \
    || fail "routed answers differ from the single-backend run"

# --- 5. graceful shutdown end to end ---
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || fail "router exited non-zero"
for pid in "$B1_PID" "$B2_PID" "$B3_PID" "$SINGLE_PID"; do
    kill -TERM "$pid"
    wait "$pid" || fail "a backend exited non-zero on SIGTERM drain"
done

echo "fleet-smoke: OK (coalesced=$COALESCED failovers=$FAILOVERS handoff_keys=$HANDOFF_KEYS; 30/30 ok through a mid-batch kill; byte-identical to single backend)"
