#!/bin/sh
# Chaos smoke for the serving layer: run the daemon with an armed fault
# plan (forced shedding, injected compute failures, truncated writes)
# and assert that (1) every fault surfaces as a structured protocol
# error, (2) the retrying client rides the transient faults out and
# eventually gets the real answer, (3) a deadline-bounded request is
# answered with deadline_exceeded, and (4) the daemon shuts down
# gracefully afterwards — it never dies to an injected fault or a
# vanished peer.
set -eu

TOOL=${TOOL:-./_build/default/bin/nbti_tool.exe}
SOCK=$(mktemp -u /tmp/nbti_chaos.XXXXXX.sock)

fail() {
    echo "chaos-smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$TOOL" ] || fail "$TOOL not built (run dune build first)"

# Two forced sheds, one injected compute failure, one truncated write,
# plus a 150 ms compute delay that the deadline test below overshoots.
FAULTS='admission=shed@2,compute=fail@1,write=truncate@1,compute=delay:150'

"$TOOL" serve -s "$SOCK" --faults "$FAULTS" --max-pending 8 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server did not open $SOCK"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

# 1. First request: shed, and its error response is truncated mid-write
#    (write=truncate@1). The client must fail cleanly; the daemon must
#    not die.
"$TOOL" request -s "$SOCK" '{"v":1,"op":"analyze","circuit":"c17"}' >/dev/null 2>&1 \
    && fail "first request should have failed (forced shed + truncated write)"
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died on a forced shed / truncated write"

# 2. Second request: the remaining shed, now written intact — a
#    structured overloaded error with a retry hint.
SHED=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"analyze","circuit":"c17"}' 2>/dev/null) \
    && fail "second request should have failed (forced shed)"
case "$SHED" in
*'"code":"overloaded"'*) ;; *) fail "expected a structured overloaded error, got: $SHED" ;;
esac
case "$SHED" in
*'"retry_after_ms"'*) ;; *) fail "overloaded error carries no retry_after_ms hint" ;;
esac

# 3. Third request: the injected worker failure must surface as a
#    structured internal_error, not kill anything.
INJ=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"analyze","circuit":"c17"}' 2>/dev/null) \
    && fail "third request should have failed (injected compute fault)"
case "$INJ" in
*'"code":"internal_error"'*'injected fault'*) ;; *) fail "expected an injected-fault error, got: $INJ" ;;
esac
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died on an injected compute fault"

# 4. With the one-shot faults drained, the client must now get the real
#    answer (the permanent 150 ms compute delay notwithstanding).
ANSWER=$("$TOOL" request -s "$SOCK" --retries 8 --retry-seed 7 \
    '{"v":1,"id":"chaos","op":"analyze","circuit":"c17"}' 2>/dev/null) \
    || fail "client did not get an answer once faults drained"
case "$ANSWER" in
*'"ok":true'*) ;; *) fail "response not ok after faults drained: $ANSWER" ;;
esac
case "$ANSWER" in
*'"id":"chaos"'*) ;; *) fail "id not echoed after retries" ;;
esac
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died under the fault plan"

# 4b. A second daemon armed with only transient faults: the retrying
#     client must ride out two forced sheds and a truncated write in a
#     single invocation and still land the answer.
SOCK2=$(mktemp -u /tmp/nbti_chaos.XXXXXX.sock)
"$TOOL" serve -s "$SOCK2" --faults 'admission=shed@2,write=truncate@1' &
SERVER2_PID=$!
trap 'kill "$SERVER_PID" "$SERVER2_PID" 2>/dev/null || true; rm -f "$SOCK" "$SOCK2"' EXIT
i=0
while [ ! -S "$SOCK2" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "second server did not open $SOCK2"
    sleep 0.1
done
RETRIED=$("$TOOL" request -s "$SOCK2" --retries 8 --retry-seed 7 \
    '{"v":1,"id":"ride","op":"analyze","circuit":"c17"}' 2>/dev/null) \
    || fail "retrying client did not survive shed+shed+truncate"
case "$RETRIED" in
*'"ok":true'*'"id":"ride"'* | *'"id":"ride"'*'"ok":true'*) ;; *) fail "retried response not ok: $RETRIED" ;;
esac
kill -TERM "$SERVER2_PID"
wait "$SERVER2_PID" || fail "second server exited non-zero"

# 5. A deadline-bounded request overshot by the remaining compute delay
#    must come back as deadline_exceeded, quickly, not hang.
DEADLINE=$("$TOOL" request -s "$SOCK" --timeout-ms 50 \
    '{"v":1,"op":"ivc_search","circuit":"c432","seed":1}' 2>/dev/null) \
    && fail "deadline-bounded request should have failed"
case "$DEADLINE" in
*'"code":"deadline_exceeded"'*) ;; *) fail "expected deadline_exceeded, got: $DEADLINE" ;;
esac

# 6. A peer that sends garbage and a half line, then vanishes, must not
#    take the daemon down.
{ printf 'not json at all\n{"v":1,"op":'; } | "$TOOL" request -s "$SOCK" - >/dev/null 2>&1 || true
sleep 0.3
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died on a misbehaving peer"

# 7. Stats must still answer and report the chaos that just happened.
STATS=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"stats"}')
case "$STATS" in
*'"shed":'*) ;; *) fail "stats missing shed counter" ;;
esac
case "$STATS" in
*'"injected_failures":'*) ;; *) fail "stats missing injected failure counter" ;;
esac
case "$STATS" in
*'"faults":'*) ;; *) fail "stats missing fault plan" ;;
esac

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero"
[ ! -S "$SOCK" ] || fail "socket file not cleaned up"

echo "chaos-smoke: OK (structured faults + retrying client + deadline + graceful shutdown)"
