#!/bin/sh
# Calibration smoke: the full measurement-to-posterior loop, end to end.
# gen-measurements writes a synthetic ground-truth CSV; the calibrate CLI
# fits it and must report a finite posterior with the R-D bridge; the
# same dataset then goes through a running daemon's calibrate wire op —
# behind one injected truncated write, so the retrying client has to
# ride a transport fault out — and the result must be served, cached on
# repeat, and visible in stats.
set -eu

TOOL=${TOOL:-./_build/default/bin/nbti_tool.exe}
SOCK=$(mktemp -u /tmp/nbti_cal.XXXXXX.sock)
CSV=$(mktemp /tmp/nbti_cal.XXXXXX.csv)
POST=$(mktemp /tmp/nbti_cal.XXXXXX.json)

fail() {
    echo "calibrate-smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$TOOL" ] || fail "$TOOL not built (run dune build first)"

# 1. Synthesize a measurement campaign from known ground truth.
"$TOOL" gen-measurements --seed 7 -o "$CSV" 2>/dev/null || fail "gen-measurements failed"
grep -q '^time_s,temp_k,vdd_v,dvth_v$' "$CSV" || fail "CSV header missing"
grep -q '^# truth:' "$CSV" || fail "ground-truth comment missing"

# 2. Fit it offline with the CLI (short but convergent settings).
"$TOOL" calibrate "$CSV" --chains 2 --warmup 500 --samples 400 --seed 42 \
    --predict 3.1536e8,400,1.0 -o "$POST" 2>/dev/null || fail "calibrate CLI failed"
case "$(cat "$POST")" in
*'"kind":"calibration"'*) ;; *) fail "posterior JSON missing kind" ;;
esac
case "$(cat "$POST")" in
*'"rd_params"'*) ;; *) fail "posterior JSON missing the R-D bridge" ;;
esac
case "$(cat "$POST")" in
*'"predictive"'*) ;; *) fail "posterior JSON missing predictive points" ;;
esac

# 3. Serve with one injected truncated write: the first calibrate answer
#    is cut mid-transport and the retrying client must recover.
"$TOOL" serve -s "$SOCK" --faults 'write=truncate@1' &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SOCK" "$CSV" "$POST"' EXIT

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server did not open $SOCK"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

# Embed the CSV into a calibrate request (JSON-escape the newlines).
CSV_JSON=$(awk '{printf "%s\\n", $0}' "$CSV")
REQ="{\"v\":1,\"id\":\"cal\",\"op\":\"calibrate\",\"csv\":\"$CSV_JSON\",\"chains\":2,\"warmup\":300,\"samples\":200}"

ANSWER=$(printf '%s\n' "$REQ" | "$TOOL" request -s "$SOCK" --retries 4 --retry-seed 7 - 2>/dev/null) \
    || fail "calibrate wire op failed despite retries"
case "$ANSWER" in
*'"ok":true'*) ;; *) fail "wire response not ok: $ANSWER" ;;
esac
case "$ANSWER" in
*'"id":"cal"'*) ;; *) fail "id not echoed through the retry" ;;
esac
case "$ANSWER" in
*'"params"'*) ;; *) fail "wire posterior missing params: $ANSWER" ;;
esac
# The truncated first answer was computed and cached before the write was
# cut, so the retry is served from the cache — idempotent ops make the
# retry free.
case "$ANSWER" in
*'"cached":true'*) ;; *) fail "retried calibration should hit the result cache" ;;
esac
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died on the truncated write"

# 4. The identical request again: served from the result cache.
AGAIN=$(printf '%s\n' "$REQ" | "$TOOL" request -s "$SOCK" - 2>/dev/null) \
    || fail "repeat calibrate request failed"
case "$AGAIN" in
*'"cached":true'*) ;; *) fail "repeat calibration not served from cache: $AGAIN" ;;
esac

# 5. Stats must list the op table and the calibrate endpoint's latency.
STATS=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"stats"}' 2>/dev/null) || fail "stats failed"
case "$STATS" in
*'"ops":'*'"calibrate"'*) ;; *) fail "stats ops table missing calibrate" ;;
esac
case "$STATS" in
*'"endpoints":'*'"calibrate"'*) ;; *) fail "stats missing calibrate endpoint metrics" ;;
esac

# 6. An unknown op must advertise calibrate among the supported ops.
UNKNOWN=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"teleport"}' 2>/dev/null) \
    && fail "unknown op should fail"
case "$UNKNOWN" in
*'"code":"invalid_request"'*'"supported_ops"'*'"calibrate"'*) ;;
*) fail "unknown-op error does not list calibrate: $UNKNOWN" ;;
esac

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero"

echo "calibrate-smoke: OK (CSV -> posterior -> wire op with retry, cache hit, stats)"
