#!/usr/bin/env bash
# Parallel-determinism smoke: the c432 variation study must print
# byte-identical results for any --jobs value (the pool's core contract).
# Timing goes to stderr in the tool, so stdout diffs cleanly.
set -eu
cd "$(dirname "$0")/.."

TOOL=_build/default/bin/nbti_tool.exe
[ -x "$TOOL" ] || { echo "parallel_smoke: build first (dune build)" >&2; exit 1; }

out1=$(mktemp)
out4=$(mktemp)
trap 'rm -f "$out1" "$out4"' EXIT

"$TOOL" variation c432 --samples 40 --seed 12 --jobs 1 >"$out1" 2>/dev/null
"$TOOL" variation c432 --samples 40 --seed 12 --jobs 4 >"$out4" 2>/dev/null

if ! diff -u "$out1" "$out4"; then
  echo "parallel smoke FAILED: --jobs 1 and --jobs 4 outputs differ" >&2
  exit 1
fi
echo "parallel smoke OK: c432 variation study identical at --jobs 1 and --jobs 4"
