#!/usr/bin/env bash
# Parallel smoke: the c432 variation study must print byte-identical
# results for any --jobs value (the pool's core contract), and the
# multi-domain run must not be pathologically slower than --jobs 1.
# Timing goes to stderr in the tool, so stdout diffs cleanly.
set -eu
cd "$(dirname "$0")/.."

TOOL=_build/default/bin/nbti_tool.exe
[ -x "$TOOL" ] || { echo "parallel_smoke: build first (dune build)" >&2; exit 1; }

out1=$(mktemp)
out4=$(mktemp)
trap 'rm -f "$out1" "$out4"' EXIT

# Enough samples that wall time reflects the kernel, not process startup.
SAMPLES=2000

now_ms() { date +%s%3N; }

t0=$(now_ms)
"$TOOL" variation c432 --samples "$SAMPLES" --seed 12 --jobs 1 >"$out1" 2>/dev/null
t1=$(now_ms)
"$TOOL" variation c432 --samples "$SAMPLES" --seed 12 --jobs 4 >"$out4" 2>/dev/null
t2=$(now_ms)

if ! diff -u "$out1" "$out4"; then
  echo "parallel smoke FAILED: --jobs 1 and --jobs 4 outputs differ" >&2
  exit 1
fi

ms1=$((t1 - t0))
ms4=$((t2 - t1))
cores=$(nproc 2>/dev/null || echo 1)

# Speedup gate. On a multicore host 4 domains must beat 1 (the PR3
# pathology ran at 0.22x). A single-core host cannot speed up, but the
# oversubscription slowdown must stay bounded: allow up to 4x (the
# measured tax is ~2.5-3x — minor-GC stop-the-world syncs across
# domains time-slicing one core — and anything past 4x means per-item
# dispatch overhead is back).
if [ "$cores" -ge 2 ]; then
  if [ "$ms4" -ge "$ms1" ]; then
    echo "parallel smoke FAILED: --jobs 4 (${ms4} ms) not faster than --jobs 1 (${ms1} ms) on a ${cores}-core host" >&2
    exit 1
  fi
  echo "parallel smoke OK: identical output; --jobs 4 ${ms4} ms vs --jobs 1 ${ms1} ms (${cores} cores)"
else
  if [ "$ms4" -gt $((ms1 * 4)) ]; then
    echo "parallel smoke FAILED: --jobs 4 (${ms4} ms) more than 4x slower than --jobs 1 (${ms1} ms) on a single-core host" >&2
    exit 1
  fi
  echo "parallel smoke OK: identical output; --jobs 4 ${ms4} ms vs --jobs 1 ${ms1} ms (single-core host, bounded slowdown)"
fi
