#!/bin/sh
# Smoke test for the aging-analysis daemon: serve + request over a Unix
# socket, assert a well-formed analyze response and working stats.
set -eu

TOOL=${TOOL:-./_build/default/bin/nbti_tool.exe}
SOCK=$(mktemp -u /tmp/nbti_smoke.XXXXXX.sock)

fail() {
    echo "smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$TOOL" ] || fail "$TOOL not built (run dune build first)"

"$TOOL" serve -s "$SOCK" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

# wait for the socket to appear (up to ~5 s)
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server did not open $SOCK"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

RESPONSE=$("$TOOL" request -s "$SOCK" '{"v":1,"id":"smoke","op":"analyze","circuit":"c17"}')
echo "smoke: response: $RESPONSE"
case "$RESPONSE" in
*'"ok":true'*) ;; *) fail "analyze response not ok" ;;
esac
case "$RESPONSE" in
*'"id":"smoke"'*) ;; *) fail "id not echoed" ;;
esac
case "$RESPONSE" in
*'"aged_delay_s":'*) ;; *) fail "no aged delay in response" ;;
esac
case "$RESPONSE" in
*'"n_gates":6'*) ;; *) fail "c17 gate count missing" ;;
esac

# a repeat must be served from the cache
REPEAT=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"analyze","circuit":"c17"}')
case "$REPEAT" in
*'"cached":true'*) ;; *) fail "repeated request was not cached" ;;
esac

STATS=$("$TOOL" request -s "$SOCK" '{"v":1,"op":"stats"}')
case "$STATS" in
*'"endpoints"'*'"analyze"'*) ;; *) fail "stats missing analyze endpoint" ;;
esac
case "$STATS" in
*'"hit_rate"'*) ;; *) fail "stats missing cache hit rate" ;;
esac

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero"
[ ! -S "$SOCK" ] || fail "socket file not cleaned up"

echo "smoke: OK (serve + analyze + cache hit + stats + graceful shutdown)"
