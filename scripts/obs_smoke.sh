#!/bin/sh
# Observability smoke test: capture a Chrome trace from a CLI analyze
# run and validate it with `nbti_tool trace`, then run the daemon with
# an access log and assert traced requests, Prometheus metrics and
# non-empty JSONL access records.
set -eu

TOOL=${TOOL:-./_build/default/bin/nbti_tool.exe}
SOCK=$(mktemp -u /tmp/nbti_obs.XXXXXX.sock)
TRACE=$(mktemp /tmp/nbti_obs.XXXXXX.trace.json)
ACCESS=$(mktemp /tmp/nbti_obs.XXXXXX.access.jsonl)

fail() {
    echo "obs-smoke: FAIL: $1" >&2
    exit 1
}

cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -f "$SOCK" "$TRACE" "$ACCESS"
}
trap cleanup EXIT

[ -x "$TOOL" ] || fail "$TOOL not built (run dune build first)"

# --- CLI trace capture ---

# --jobs 2 arms a 2-domain pool so the trace exercises the pool.chunk
# spans (and their correlation-id propagation onto worker domains).
"$TOOL" analyze c432 --jobs 2 --trace "$TRACE" --log-level quiet >/dev/null 2>&1 \
    || fail "traced analyze run failed"
[ -s "$TRACE" ] || fail "trace file empty"
case "$(cat "$TRACE")" in
*'"traceEvents"'*) ;; *) fail "trace file is not Chrome trace_event JSON" ;;
esac
case "$(cat "$TRACE")" in
*'"flow.signal_prob"'*) ;; *) fail "trace missing flow stage spans" ;;
esac
case "$(cat "$TRACE")" in
*'"cid":"cli:analyze:c432"'*) ;; *) fail "trace spans missing correlation id" ;;
esac

# `trace` re-parses the JSON and rebuilds the flame summary — this is
# the structural validation (it exits non-zero on malformed traces).
SUMMARY=$("$TOOL" trace "$TRACE") || fail "trace file failed validation"
echo "$SUMMARY" | head -4
case "$SUMMARY" in
*'flow.prepare'*) ;; *) fail "flame summary missing flow.prepare" ;;
esac
case "$SUMMARY" in
*'pool.chunk'*) ;; *) fail "flame summary missing pool chunks" ;;
esac

# --- daemon: access log + metrics endpoint ---

"$TOOL" serve -s "$SOCK" --access-log "$ACCESS" --log-level quiet &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server did not open $SOCK"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

RESPONSE=$("$TOOL" request -s "$SOCK" '{"v":1,"id":"obs-1","op":"analyze","circuit":"c17"}')
case "$RESPONSE" in
*'"ok":true'*) ;; *) fail "analyze response not ok" ;;
esac

METRICS=$("$TOOL" request -s "$SOCK" '{"v":1,"id":"obs-2","op":"metrics"}')
case "$METRICS" in
*'# TYPE nbti_requests_total counter'*) ;; *) fail "metrics missing requests family" ;;
esac
case "$METRICS" in
*'nbti_requests_total{endpoint=\"analyze\"}'*) ;; *) fail "metrics missing analyze endpoint" ;;
esac
case "$METRICS" in
*'nbti_request_latency_seconds_bucket'*) ;; *) fail "metrics missing latency histogram" ;;
esac
case "$METRICS" in
*'nbti_build_info'*) ;; *) fail "metrics missing build info" ;;
esac
case "$METRICS" in
*'nbti_cache_entries'*) ;; *) fail "metrics missing cache gauges" ;;
esac

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero"
SERVER_PID=

[ -s "$ACCESS" ] || fail "access log empty"
LINES=$(wc -l < "$ACCESS")
[ "$LINES" -ge 2 ] || fail "access log has $LINES records, expected >= 2"
case "$(cat "$ACCESS")" in
*'"cid":"obs-1"'*) ;; *) fail "access log missing analyze correlation id" ;;
esac
case "$(cat "$ACCESS")" in
*'"endpoint":"metrics"'*) ;; *) fail "access log missing metrics request" ;;
esac
case "$(head -1 "$ACCESS")" in
*'"ts":'*'"ok":'*'"elapsed_s":'*) ;; *) fail "access record missing fields" ;;
esac

echo "obs-smoke: OK (traced analyze + flame summary + metrics endpoint + access log)"
