(* Tests for the aging-analysis service: JSON codec, wire protocol,
   LRU cache, metrics, in-process dispatch, and the socket loop. *)

(* --- Json --- *)

let test_json_roundtrip () =
  let samples =
    [
      "null";
      "true";
      "false";
      "0";
      "-17";
      "[1,2,3]";
      "{}";
      "[]";
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}";
    ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Server.Json.to_string (Server.Json.of_string s)))
    samples

let test_json_float_exact () =
  (* floats must round-trip bit-exactly: the cache-correctness tests
     below depend on it *)
  let values = [ 1.4640018001404625e-11; 0.1; 1.0 /. 3.0; 6.02e23; -0.0; 1e-300; 4.5 ] in
  List.iter
    (fun f ->
      let json = Server.Json.to_string (Server.Json.Float f) in
      match Server.Json.of_string json with
      | Server.Json.Float f' ->
        Alcotest.(check bool) (json ^ " exact") true (Int64.bits_of_float f = Int64.bits_of_float f')
      | Server.Json.Int i -> Alcotest.(check (float 0.0)) json f (float_of_int i)
      | _ -> Alcotest.fail "not a number")
    values

let test_json_string_escapes () =
  let s = "line1\nline2\t\"quoted\" back\\slash \x01" in
  let json = Server.Json.to_string (Server.Json.String s) in
  Alcotest.(check bool) "single line" true (not (String.contains json '\n'));
  (match Server.Json.of_string json with
  | Server.Json.String s' -> Alcotest.(check string) "escape roundtrip" s s'
  | _ -> Alcotest.fail "not a string");
  (* unicode escapes decode to UTF-8 *)
  match Server.Json.of_string "\"\\u00e9\\ud83d\\ude00\"" with
  | Server.Json.String s -> Alcotest.(check string) "utf8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "not a string"

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "nan" ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Server.Json.of_string s);
           false
         with Server.Json.Parse_error _ -> true))
    bad

let test_json_accessors () =
  let v = Server.Json.of_string "{\"i\":3,\"f\":2.5,\"s\":\"x\",\"b\":true,\"l\":[1]}" in
  Alcotest.(check int) "int" 3 Server.Json.(to_int (member "i" v));
  Alcotest.(check (float 0.0)) "float" 2.5 Server.Json.(to_float (member "f" v));
  Alcotest.(check (float 0.0)) "int as float" 3.0 Server.Json.(to_float (member "i" v));
  Alcotest.(check string) "string" "x" Server.Json.(to_string_exn (member "s" v));
  Alcotest.(check bool) "bool" true Server.Json.(to_bool (member "b" v));
  Alcotest.(check int) "list" 1 (List.length Server.Json.(to_list (member "l" v)));
  Alcotest.(check bool) "absent member is Null" true (Server.Json.member "zz" v = Server.Json.Null);
  Alcotest.(check bool) "type error raised" true
    (try
       ignore Server.Json.(to_int (member "s" v));
       false
     with Server.Json.Type_error _ -> true)

(* --- Cache --- *)

let test_cache_lru () =
  let c = Server.Cache.create ~capacity:2 () in
  Server.Cache.add c "a" 1;
  Server.Cache.add c "b" 2;
  (* touch a so that b is the LRU entry *)
  Alcotest.(check (option int)) "a hit" (Some 1) (Server.Cache.find c "a");
  Server.Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Server.Cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Server.Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Server.Cache.find c "c");
  let s = Server.Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Server.Cache.evictions;
  Alcotest.(check int) "size" 2 s.Server.Cache.size;
  Alcotest.(check int) "hits" 3 s.Server.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Server.Cache.misses

let test_cache_find_or_add () =
  let c = Server.Cache.create ~capacity:4 () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    !computes
  in
  let v1, hit1 = Server.Cache.find_or_add c "k" compute in
  let v2, hit2 = Server.Cache.find_or_add c "k" compute in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check int) "computed once" 1 !computes;
  Alcotest.(check int) "same value" v1 v2;
  Server.Cache.clear c;
  let _, hit3 = Server.Cache.find_or_add c "k" compute in
  Alcotest.(check bool) "cleared" false hit3

let test_cache_replace_and_bounds () =
  Alcotest.(check bool) "capacity >= 1 enforced" true
    (try
       ignore (Server.Cache.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true);
  let c = Server.Cache.create ~capacity:3 () in
  Server.Cache.add c "k" 1;
  Server.Cache.add c "k" 2;
  Alcotest.(check (option int)) "replaced" (Some 2) (Server.Cache.find c "k");
  Alcotest.(check int) "no duplicate entry" 1 (Server.Cache.length c);
  for i = 0 to 99 do
    Server.Cache.add c (string_of_int i) i
  done;
  Alcotest.(check bool) "bounded" true (Server.Cache.length c <= 3)

(* --- Metrics --- *)

let test_metrics () =
  let m = Server.Metrics.create () in
  Server.Metrics.record m ~endpoint:"analyze" ~ok:true ~elapsed_s:0.002;
  Server.Metrics.record m ~endpoint:"analyze" ~ok:false ~elapsed_s:0.5;
  Server.Metrics.record m ~endpoint:"health" ~ok:true ~elapsed_s:1e-5;
  match Server.Metrics.snapshot m with
  | [ a; h ] ->
    Alcotest.(check string) "sorted" "analyze" a.Server.Metrics.endpoint;
    Alcotest.(check string) "sorted2" "health" h.Server.Metrics.endpoint;
    Alcotest.(check int) "requests" 2 a.Server.Metrics.requests;
    Alcotest.(check int) "errors" 1 a.Server.Metrics.errors;
    Alcotest.(check (float 1e-9)) "mean" 0.251 (Server.Metrics.mean_s a);
    Alcotest.(check (float 1e-9)) "max" 0.5 a.Server.Metrics.max_s;
    Alcotest.(check bool) "p50 sane" true
      (Server.Metrics.quantile_s a 0.5 >= 0.002 && Server.Metrics.quantile_s a 0.5 <= 0.01);
    Alcotest.(check (float 1e-9)) "p99 caps at max" 0.5 (Server.Metrics.quantile_s a 0.99);
    let total_counts = Array.fold_left ( + ) 0 a.Server.Metrics.histogram.Server.Metrics.counts in
    Alcotest.(check int) "histogram complete" 2 total_counts
  | l -> Alcotest.fail (Printf.sprintf "expected 2 endpoints, got %d" (List.length l))

let test_metrics_time () =
  let m = Server.Metrics.create () in
  let v = Server.Metrics.time m ~endpoint:"x" (fun () -> 41 + 1) in
  Alcotest.(check int) "result passed through" 42 v;
  Alcotest.(check bool) "exception recorded and re-raised" true
    (try
       Server.Metrics.time m ~endpoint:"x" (fun () -> failwith "boom")
     with Failure _ -> true);
  match Server.Metrics.snapshot m with
  | [ s ] ->
    Alcotest.(check int) "two requests" 2 s.Server.Metrics.requests;
    Alcotest.(check int) "one error" 1 s.Server.Metrics.errors
  | _ -> Alcotest.fail "one endpoint expected"

(* --- Protocol --- *)

let test_protocol_roundtrip () =
  let open Server.Protocol in
  let jobs =
    [
      Analyze { circuit = Named "c17"; flow = default_flow_spec; standby = Worst };
      Analyze
        {
          circuit = Bench "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
          flow = { default_flow_spec with years = 3.0; pbti_scale = Some 0.5 };
          standby = Vector [| true; false |];
        };
      Ivc_search
        { circuit = Named "c432"; flow = default_flow_spec; seed = 9; pool = 32; tolerance = Some 0.1 };
      Sleep_sizing
        {
          circuit = Named "c17";
          flow = default_flow_spec;
          style = Sleep.St_insertion.Header;
          beta = 0.05;
          vth_st = Some 0.3;
          nbti_aware = false;
        };
    ]
  in
  List.iter
    (fun job ->
      let e = { id = Some "req-1"; timeout_ms = None; trace = None; request = Single job } in
      let json = Server.Json.of_string (Server.Json.to_string (json_of_envelope e)) in
      match envelope_of_json json with
      | Ok e' -> Alcotest.(check bool) "roundtrip" true (e = e')
      | Error { message = m; _ } -> Alcotest.fail m)
    jobs;
  let batch = { id = None; timeout_ms = None; trace = None; request = Batch jobs } in
  (match envelope_of_json (json_of_envelope batch) with
  | Ok b -> Alcotest.(check bool) "batch roundtrip" true (b = batch)
  | Error { message = m; _ } -> Alcotest.fail m);
  List.iter
    (fun r ->
      match
        envelope_of_json (json_of_envelope { id = None; timeout_ms = None; trace = None; request = r })
      with
      | Ok e -> Alcotest.(check bool) "introspective roundtrip" true (e.request = r)
      | Error { message = m; _ } -> Alcotest.fail m)
    [ Health; Stats ]

let expect_error code json =
  match Server.Protocol.envelope_of_json json with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error { Server.Protocol.code = c; _ } ->
    Alcotest.(check string) "error code"
      (Server.Protocol.error_code_string code)
      (Server.Protocol.error_code_string c)

let test_protocol_versioning () =
  let open Server.Json in
  expect_error Server.Protocol.Unsupported_version
    (Assoc [ ("op", String "health") ]);
  expect_error Server.Protocol.Unsupported_version
    (Assoc [ ("v", Int 99); ("op", String "health") ]);
  expect_error Server.Protocol.Bad_request (Assoc [ ("v", Int 1) ]);
  (* unknown ops are structured invalid_request (with supported_ops) *)
  expect_error Server.Protocol.Invalid_request
    (Assoc [ ("v", Int 1); ("op", String "teleport") ]);
  expect_error Server.Protocol.Bad_request
    (Assoc [ ("v", Int 1); ("op", String "analyze") ]);
  expect_error Server.Protocol.Bad_request
    (Assoc [ ("v", Int 1); ("op", String "analyze"); ("circuit", String "c17"); ("standby", String "2x") ]);
  expect_error Server.Protocol.Bad_request (String "not an object")

let test_job_cache_key () =
  let open Server.Protocol in
  let job flow = Analyze { circuit = Named "c17"; flow; standby = Worst } in
  let key flow = job_cache_key (job flow) ~circuit_digest:"d" in
  Alcotest.(check string) "stable" (key default_flow_spec) (key default_flow_spec);
  Alcotest.(check bool) "years changes key" true
    (key default_flow_spec <> key { default_flow_spec with years = 3.0 });
  Alcotest.(check bool) "standby changes key" true
    (job_cache_key (job default_flow_spec) ~circuit_digest:"d"
    <> job_cache_key
         (Analyze { circuit = Named "c17"; flow = default_flow_spec; standby = Best })
         ~circuit_digest:"d");
  Alcotest.(check bool) "digest changes key" true
    (job_cache_key (job default_flow_spec) ~circuit_digest:"d"
    <> job_cache_key (job default_flow_spec) ~circuit_digest:"e")

(* --- Service: in-process dispatch --- *)

let analyze_c17_request ?id () =
  let open Server.Protocol in
  json_of_envelope
    {
      id;
      timeout_ms = None;
      trace = None;
      request = Single (Analyze { circuit = Named "c17"; flow = default_flow_spec; standby = Worst });
    }

let result_of_response json =
  match Server.Protocol.response_result json with
  | Ok r -> r
  | Error (code, m) -> Alcotest.fail (code ^ ": " ^ m)

let test_service_roundtrip_exact () =
  let t = Server.Service.create () in
  (* direct platform run, same config as the protocol default *)
  let cfg = Server.Protocol.platform_config Server.Protocol.default_flow_spec in
  let net = Circuit.Generators.c17 () in
  let direct =
    Flow.Platform.analyze cfg (Flow.Platform.prepare cfg net)
      ~standby:Aging.Circuit_aging.Standby_all_stressed
  in
  (* served run, through the full encode -> dispatch -> decode path *)
  let response =
    Server.Json.of_string (Server.Service.handle_line t (Server.Json.to_string (analyze_c17_request ())))
  in
  let result = result_of_response response in
  let served = Server.Protocol.analysis_of_json (Server.Json.member "analysis" result) in
  Alcotest.(check bool) "served analysis = direct analysis, bit-exact" true (served = direct);
  Alcotest.(check bool) "first answer is uncached" false
    (Server.Json.to_bool (Server.Json.member "cached" result));
  Alcotest.(check string) "digest advertised" (Circuit.Netlist.digest net)
    (Server.Json.to_string_exn (Server.Json.member "digest" result));
  Alcotest.(check string) "fingerprint advertised" (Flow.Platform.config_fingerprint cfg)
    (Server.Json.to_string_exn (Server.Json.member "fingerprint" result))

let test_service_cache_hit () =
  let t = Server.Service.create () in
  let ask () = result_of_response (Server.Service.handle t (analyze_c17_request ())) in
  let r1 = ask () in
  let r2 = ask () in
  Alcotest.(check bool) "first uncached" false
    (Server.Json.to_bool (Server.Json.member "cached" r1));
  Alcotest.(check bool) "second cached" true
    (Server.Json.to_bool (Server.Json.member "cached" r2));
  (* identical numbers from the cache *)
  Alcotest.(check bool) "identical payloads" true
    (Server.Json.member "analysis" r1 = Server.Json.member "analysis" r2);
  (* the stats endpoint confirms: one result-cache hit, one miss, and no
     second prepare *)
  let stats =
    result_of_response
      (Server.Service.handle t
         (Server.Json.Assoc [ ("v", Server.Json.Int 1); ("op", Server.Json.String "stats") ]))
  in
  let cache_field group field =
    Server.Json.(to_int (member field (member group (member "cache" stats))))
  in
  Alcotest.(check int) "result hits" 1 (cache_field "results" "hits");
  Alcotest.(check int) "result misses" 1 (cache_field "results" "misses");
  Alcotest.(check int) "prepared computed once" 1 (cache_field "prepared" "misses");
  let analyze_requests =
    Server.Json.(to_int (member "requests" (member "analyze" (member "endpoints" stats))))
  in
  Alcotest.(check int) "request counter" 2 analyze_requests

let test_service_prepared_shared_across_years () =
  let open Server.Protocol in
  let t = Server.Service.create () in
  let ask years =
    let flow = { default_flow_spec with years } in
    let e =
      {
        id = None;
        timeout_ms = None;
        trace = None;
        request = Single (Analyze { circuit = Named "c17"; flow; standby = Worst });
      }
    in
    ignore (result_of_response (Server.Service.handle t (json_of_envelope e)))
  in
  ask 10.0;
  ask 3.0;
  ask 1.0;
  let stats =
    result_of_response
      (Server.Service.handle t
         (Server.Json.Assoc [ ("v", Server.Json.Int 1); ("op", Server.Json.String "stats") ]))
  in
  let prepared field =
    Server.Json.(to_int (member field (member "prepared" (member "cache" stats))))
  in
  (* three different lifetimes: three result-cache entries but a single
     prepared pipeline *)
  Alcotest.(check int) "prepare ran once" 1 (prepared "misses");
  Alcotest.(check int) "prepare reused" 2 (prepared "hits")

let test_service_errors () =
  let t = Server.Service.create () in
  let expect_code code line =
    let response = Server.Json.of_string (Server.Service.handle_line t line) in
    match Server.Protocol.response_result response with
    | Ok _ -> Alcotest.fail ("expected error for " ^ line)
    | Error (c, _) -> Alcotest.(check string) ("code for " ^ line) code c
  in
  expect_code "parse_error" "{not json";
  expect_code "unsupported_version" "{\"op\":\"health\"}";
  expect_code "bad_request" "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c99999\"}";
  expect_code "bad_request"
    "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\",\"standby\":\"01\"}";
  expect_code "invalid_request"
    "{\"v\":1,\"op\":\"analyze\",\"circuit\":{\"bench\":\"INPUT a\"}}";
  (* id is echoed on errors too *)
  let response =
    Server.Json.of_string (Server.Service.handle_line t "{\"v\":1,\"id\":\"e1\",\"op\":\"nope\"}")
  in
  Alcotest.(check string) "id echoed" "e1"
    (Server.Json.to_string_exn (Server.Json.member "id" response))

let test_service_batch_and_health () =
  let t = Server.Service.create () in
  let line =
    "{\"v\":1,\"op\":\"batch\",\"jobs\":[{\"op\":\"analyze\",\"circuit\":\"c17\"},{\"op\":\"analyze\",\"circuit\":\"c17\",\"standby\":\"best\"},{\"op\":\"analyze\",\"circuit\":\"zzz\"}]}"
  in
  let result = result_of_response (Server.Json.of_string (Server.Service.handle_line t line)) in
  (match Server.Json.member "results" result with
  | Server.Json.List [ a; b; err ] ->
    Alcotest.(check string) "job 1 ok" "analysis"
      (Server.Json.to_string_exn (Server.Json.member "kind" a));
    Alcotest.(check string) "job 2 ok" "analysis"
      (Server.Json.to_string_exn (Server.Json.member "kind" b));
    Alcotest.(check string) "job 3 error inline" "error"
      (Server.Json.to_string_exn (Server.Json.member "kind" err));
    Alcotest.(check bool) "different standby, different numbers" true
      (Server.Json.member "analysis" a <> Server.Json.member "analysis" b)
  | _ -> Alcotest.fail "expected 3 batch results");
  let health =
    result_of_response
      (Server.Json.of_string (Server.Service.handle_line t "{\"v\":1,\"op\":\"health\"}"))
  in
  Alcotest.(check string) "healthy" "ok"
    (Server.Json.to_string_exn (Server.Json.member "status" health))

let test_service_ivc_and_sleep () =
  let t = Server.Service.create () in
  let ivc =
    result_of_response
      (Server.Json.of_string
         (Server.Service.handle_line t
            "{\"v\":1,\"op\":\"ivc_search\",\"circuit\":\"c17\",\"seed\":61,\"pool\":16}"))
  in
  let best = Server.Json.(member "best" (member "ivc" ivc)) in
  Alcotest.(check int) "best vector covers the PIs" 5
    (String.length (Server.Json.to_string_exn (Server.Json.member "vector" best)));
  Alcotest.(check bool) "positive leakage" true
    (Server.Json.to_float (Server.Json.member "leakage_a" best) > 0.0);
  let sleep =
    result_of_response
      (Server.Json.of_string
         (Server.Service.handle_line t
            "{\"v\":1,\"op\":\"sleep_sizing\",\"circuit\":\"c17\",\"style\":\"footer\",\"beta\":0.03}"))
  in
  let s = Server.Json.member "sleep" sleep in
  Alcotest.(check (float 0.0)) "footer has no ST drift" 0.0
    (Server.Json.to_float (Server.Json.member "st_dvth_v" s));
  Alcotest.(check bool) "with-ST slower than without" true
    (Server.Json.to_float (Server.Json.member "fresh_delay_with_st_s" s)
    > Server.Json.to_float (Server.Json.member "fresh_delay_s" s));
  (* a repeated optimization request is served from the result cache *)
  let ivc2 =
    result_of_response
      (Server.Json.of_string
         (Server.Service.handle_line t
            "{\"v\":1,\"op\":\"ivc_search\",\"circuit\":\"c17\",\"seed\":61,\"pool\":16}"))
  in
  Alcotest.(check bool) "ivc cached on repeat" true
    (Server.Json.to_bool (Server.Json.member "cached" ivc2));
  Alcotest.(check bool) "cached ivc identical" true
    (Server.Json.member "ivc" ivc = Server.Json.member "ivc" ivc2)

(* --- Service: socket round trip --- *)

let test_socket_end_to_end () =
  let t = Server.Service.create () in
  let path = Filename.temp_file "nbti_service" ".sock" in
  Sys.remove path;
  let ready = Mutex.create () in
  let ready_cond = Condition.create () in
  let is_ready = ref false in
  let on_ready () =
    Mutex.lock ready;
    is_ready := true;
    Condition.signal ready_cond;
    Mutex.unlock ready
  in
  let server_thread =
    Thread.create (fun () -> Server.Service.serve t (Server.Service.Unix_socket path) ~on_ready ()) ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait ready_cond ready
  done;
  Mutex.unlock ready;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let roundtrip line =
    output_string oc (line ^ "\n");
    flush oc;
    Server.Json.of_string (input_line ic)
  in
  (* several requests on one connection, answered in order *)
  let health = result_of_response (roundtrip "{\"v\":1,\"op\":\"health\"}") in
  Alcotest.(check string) "health over socket" "ok"
    (Server.Json.to_string_exn (Server.Json.member "status" health));
  let r1 = result_of_response (roundtrip (Server.Json.to_string (analyze_c17_request ~id:"s1" ()))) in
  let r2 = result_of_response (roundtrip (Server.Json.to_string (analyze_c17_request ~id:"s2" ()))) in
  Alcotest.(check bool) "socket: second cached" true
    (Server.Json.to_bool (Server.Json.member "cached" r2));
  Alcotest.(check bool) "socket: identical analysis" true
    (Server.Json.member "analysis" r1 = Server.Json.member "analysis" r2);
  (* decoded socket response equals the direct platform run *)
  let cfg = Server.Protocol.platform_config Server.Protocol.default_flow_spec in
  let direct =
    Flow.Platform.analyze cfg
      (Flow.Platform.prepare cfg (Circuit.Generators.c17 ()))
      ~standby:Aging.Circuit_aging.Standby_all_stressed
  in
  let served = Server.Protocol.analysis_of_json (Server.Json.member "analysis" r1) in
  Alcotest.(check bool) "socket analysis bit-exact" true (served = direct);
  Unix.close fd;
  Server.Service.stop t;
  Thread.join server_thread;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let test_endpoint_parsing () =
  let check_ok s expected =
    match Server.Service.endpoint_of_string s with
    | Ok e -> Alcotest.(check bool) s true (e = expected)
    | Error m -> Alcotest.fail m
  in
  check_ok "/tmp/x.sock" (Server.Service.Unix_socket "/tmp/x.sock");
  check_ok "unix:/tmp/x.sock" (Server.Service.Unix_socket "/tmp/x.sock");
  check_ok "tcp:localhost:9000" (Server.Service.Tcp ("localhost", 9000));
  check_ok "tcp::9000" (Server.Service.Tcp ("127.0.0.1", 9000));
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (match Server.Service.endpoint_of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "tcp:localhost:notaport"; "tcp:localhost:0"; "tcp:nocolon" ]

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float exactness" `Quick test_json_float_exact;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "find_or_add" `Quick test_cache_find_or_add;
          Alcotest.test_case "replace and bounds" `Quick test_cache_replace_and_bounds;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and histogram" `Quick test_metrics;
          Alcotest.test_case "time wrapper" `Quick test_metrics_time;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "versioning and errors" `Quick test_protocol_versioning;
          Alcotest.test_case "cache keys" `Quick test_job_cache_key;
        ] );
      ( "service",
        [
          Alcotest.test_case "round trip is bit-exact" `Quick test_service_roundtrip_exact;
          Alcotest.test_case "cache hit on repeat" `Quick test_service_cache_hit;
          Alcotest.test_case "prepared shared across lifetimes" `Quick
            test_service_prepared_shared_across_years;
          Alcotest.test_case "structured errors" `Quick test_service_errors;
          Alcotest.test_case "batch and health" `Quick test_service_batch_and_health;
          Alcotest.test_case "ivc and sleep ops" `Quick test_service_ivc_and_sleep;
          Alcotest.test_case "endpoint parsing" `Quick test_endpoint_parsing;
          Alcotest.test_case "socket end to end" `Quick test_socket_end_to_end;
        ] );
    ]
