(* Calibration engine tests: Stats helpers, dataset parsing, synthetic
   ground-truth recovery, domain-count determinism, sampler health, the
   R-D bridge, and the calibrate wire op (cache, deadline, errors). *)

let check_float = Alcotest.(check (float 1e-12))

(* --- Physics.Stats helpers --- *)

let test_weighted_quantile () =
  let xs = [| 3.0; 1.0; 4.0; 1.5; 9.0; 2.6; 5.3; 5.8; 9.7; 9.3 |] in
  let uniform = Array.make (Array.length xs) 1.0 in
  (* equal weights agree with the unweighted percentile to interpolation
     convention: both land inside the same order-statistic bracket *)
  List.iter
    (fun q ->
      let w = Physics.Stats.weighted_quantile xs ~weights:uniform ~q in
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      let lo = sorted.(Stdlib.max 0 (int_of_float (Float.round (q *. 10.)) - 1)) in
      let hi = sorted.(Stdlib.min 9 (int_of_float (Float.round (q *. 10.)))) in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f in bracket [%g, %g], got %g" q lo hi w)
        true
        (w >= lo -. 1e-12 && w <= hi +. 1e-12))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ];
  (* extremes *)
  check_float "q=0 is min" 1.0 (Physics.Stats.weighted_quantile xs ~weights:uniform ~q:0.0);
  check_float "q=1 is max" 9.7 (Physics.Stats.weighted_quantile xs ~weights:uniform ~q:1.0);
  (* a dominant weight pins the quantile to its sample *)
  let xs = [| 1.0; 2.0; 3.0 |] in
  let w = [| 0.01; 0.98; 0.01 |] in
  check_float "dominant weight" 2.0 (Physics.Stats.weighted_quantile xs ~weights:w ~q:0.5);
  (* zero-weight samples are invisible *)
  let q =
    Physics.Stats.weighted_quantile [| 1.0; 100.0; 2.0 |] ~weights:[| 1.0; 0.0; 1.0 |] ~q:1.0
  in
  check_float "zero weight excluded from q=1" 2.0 q

let test_hdi () =
  (* a tight cluster plus one outlier: the 60% HDI must stay in the cluster *)
  let xs = [| 0.9; 1.0; 1.1; 1.2; 10.0 |] in
  let lo, hi = Physics.Stats.hdi xs ~level:0.6 in
  Alcotest.(check bool) "hdi avoids outlier" true (lo >= 0.9 && hi <= 1.2);
  Alcotest.(check bool) "hdi ordered" true (lo <= hi);
  let lo, hi = Physics.Stats.hdi xs ~level:1.0 in
  check_float "full hdi lo" 0.9 lo;
  check_float "full hdi hi" 10.0 hi

let test_ess () =
  let n = 4000 in
  let rng = Physics.Rng.create ~seed:11 in
  let iid = Array.init n (fun _ -> Physics.Rng.gaussian rng ~mean:0.0 ~sigma:1.0) in
  let e_iid = Physics.Stats.ess iid in
  Alcotest.(check bool)
    (Printf.sprintf "iid ESS near n (%g of %d)" e_iid n)
    true
    (e_iid > 0.6 *. float_of_int n);
  (* AR(1) with rho = 0.95 has tau ~ (1+rho)/(1-rho) = 39 *)
  let rho = 0.95 in
  let ar = Array.make n 0.0 in
  for i = 1 to n - 1 do
    ar.(i) <- (rho *. ar.(i - 1)) +. Physics.Rng.gaussian rng ~mean:0.0 ~sigma:1.0
  done;
  let e_ar = Physics.Stats.ess ar in
  Alcotest.(check bool)
    (Printf.sprintf "AR(1) ESS much smaller (%g)" e_ar)
    true
    (e_ar < 0.1 *. float_of_int n);
  Alcotest.(check bool) "ESS >= 1" true (e_ar >= 1.0);
  check_float "lag-0 autocorrelation" 1.0 (Physics.Stats.autocorrelation iid ~lag:0);
  Alcotest.(check bool) "AR(1) lag-1 autocorrelation near rho" true
    (Float.abs (Physics.Stats.autocorrelation ar ~lag:1 -. rho) < 0.05);
  check_float "constant series ESS = n" 5.0 (Physics.Stats.ess (Array.make 5 3.0))

(* --- Dataset --- *)

let test_dataset_csv () =
  let data = Calibrate.Synth.generate ~seed:3 () in
  let csv = Calibrate.Dataset.to_csv data in
  (match Calibrate.Dataset.of_csv csv with
  | Ok d ->
    Alcotest.(check bool) "CSV round-trips bit-exactly" true (d = data);
    Alcotest.(check string) "digest stable" (Calibrate.Dataset.digest data)
      (Calibrate.Dataset.digest d)
  | Error { Calibrate.Dataset.message; _ } -> Alcotest.fail message);
  (* comments and blank lines are skipped *)
  (match Calibrate.Dataset.of_csv ("# a comment\n\n" ^ csv) with
  | Ok d -> Alcotest.(check bool) "comments skipped" true (d = data)
  | Error { Calibrate.Dataset.message; _ } -> Alcotest.fail message)

let test_dataset_errors () =
  let expect_line expected csv =
    match Calibrate.Dataset.of_csv csv with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error { Calibrate.Dataset.line; _ } ->
      Alcotest.(check (option int)) "error line number" expected line
  in
  (* line 3 has a non-numeric field *)
  expect_line (Some 3) "time_s,temp_k,vdd_v,dvth_v\n1e3,400,1.0,0.01\n1e4,oops,1.0,0.02\n";
  (* line 2 has too few columns *)
  expect_line (Some 2) "time_s,temp_k,vdd_v,dvth_v\n1e3,400\n";
  (* line 4 has a non-positive stress condition *)
  expect_line (Some 4) "# c\n1e3,400,1.0,0.01\n\n1e4,-5,1.0,0.02\n";
  (* no data rows at all: dataset-level error *)
  expect_line None "time_s,temp_k,vdd_v,dvth_v\n# nothing\n"

(* --- Synthetic recovery --- *)

let truth = Calibrate.Synth.default_truth

let recovery_config =
  { Calibrate.Engine.default_config with Calibrate.Engine.seed = 42 }

let recovery_data = lazy (Calibrate.Synth.generate ~seed:7 ())

let test_recovery_within_ci () =
  let posterior = Calibrate.Engine.run recovery_config (Lazy.force recovery_data) in
  let want = Calibrate.Model.to_array truth in
  Array.iteri
    (fun i (p : Calibrate.Posterior.param_summary) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: truth %g in 95%% CI [%g, %g]" p.Calibrate.Posterior.name want.(i)
           p.Calibrate.Posterior.ci_lo p.Calibrate.Posterior.ci_hi)
        true
        (want.(i) >= p.Calibrate.Posterior.ci_lo && want.(i) <= p.Calibrate.Posterior.ci_hi);
      (match p.Calibrate.Posterior.rhat with
      | Some r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: rhat %g converged" p.Calibrate.Posterior.name r)
          true (r < 1.35)
      | None -> Alcotest.fail "MH summaries carry rhat");
      Alcotest.(check bool)
        (Printf.sprintf "%s: ess %g usable" p.Calibrate.Posterior.name p.Calibrate.Posterior.ess)
        true
        (p.Calibrate.Posterior.ess > 20.0))
    posterior.Calibrate.Posterior.params

let test_acceptance_in_range () =
  let posterior = Calibrate.Engine.run recovery_config (Lazy.force recovery_data) in
  Alcotest.(check int) "one rate per chain" recovery_config.Calibrate.Engine.n_chains
    (Array.length posterior.Calibrate.Posterior.accept_rates);
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "tuned acceptance %g in [0.05, 0.6]" r)
        true
        (r >= 0.05 && r <= 0.6))
    posterior.Calibrate.Posterior.accept_rates

let test_importance_cross_check () =
  let config =
    {
      recovery_config with
      Calibrate.Engine.sampler = Calibrate.Engine.Importance { particles = 4000 };
    }
  in
  let posterior = Calibrate.Engine.run config (Lazy.force recovery_data) in
  (match posterior.Calibrate.Posterior.weight_ess with
  | Some e ->
    Alcotest.(check bool) (Printf.sprintf "weight ESS %g usable" e) true (e > 10.0)
  | None -> Alcotest.fail "SNIS posterior carries weight ESS");
  (* the cross-check samplers agree on the well-identified parameters *)
  let mh = Calibrate.Engine.run recovery_config (Lazy.force recovery_data) in
  Array.iteri
    (fun i (p : Calibrate.Posterior.param_summary) ->
      let m = mh.Calibrate.Posterior.params.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: SNIS mean %g within 4 MH posterior sd of %g"
           p.Calibrate.Posterior.name p.Calibrate.Posterior.mean m.Calibrate.Posterior.mean)
        true
        (Float.abs (p.Calibrate.Posterior.mean -. m.Calibrate.Posterior.mean)
        < 4.0 *. m.Calibrate.Posterior.sd))
    posterior.Calibrate.Posterior.params

(* --- Determinism across domain counts --- *)

let test_bit_identical_across_domains () =
  (* a shorter run: determinism is scheduling-structural, not length-dependent *)
  let config =
    {
      recovery_config with
      Calibrate.Engine.warmup = 300;
      samples = 200;
      predict = [| (Physics.Units.ten_years, 400.0, 1.0) |];
    }
  in
  let data = Lazy.force recovery_data in
  let run domains =
    Parallel.Pool.with_pool ~domains (fun pool -> Calibrate.Engine.run ~pool config data)
  in
  let p1 = run 1 and p2 = run 2 and p4 = run 4 in
  Alcotest.(check bool) "posterior draws identical 1 vs 2 domains" true
    (p1.Calibrate.Posterior.draws = p2.Calibrate.Posterior.draws);
  Alcotest.(check bool) "posterior draws identical 1 vs 4 domains" true
    (p1.Calibrate.Posterior.draws = p4.Calibrate.Posterior.draws);
  Alcotest.(check bool) "full posterior identical across domain counts" true
    (p1 = p2 && p2 = p4)

(* --- Engine validation and fingerprints --- *)

let test_engine_validation () =
  let expect_invalid c =
    match Calibrate.Engine.validate c with
    | Ok () -> Alcotest.fail "expected a validation error"
    | Error _ -> ()
  in
  let d = Calibrate.Engine.default_config in
  expect_invalid { d with Calibrate.Engine.n_chains = 0 };
  expect_invalid { d with Calibrate.Engine.samples = 0 };
  expect_invalid { d with Calibrate.Engine.thin = 0 };
  expect_invalid { d with Calibrate.Engine.ci_level = 1.0 };
  expect_invalid { d with Calibrate.Engine.warmup = max_int / 8 };
  expect_invalid
    { d with Calibrate.Engine.sampler = Calibrate.Engine.Importance { particles = 0 } };
  expect_invalid { d with Calibrate.Engine.predict = [| (0.0, 400.0, 1.0) |] };
  (match Calibrate.Engine.validate d with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* fingerprints separate configs that compute different posteriors *)
  let fp = Calibrate.Engine.fingerprint in
  Alcotest.(check string) "fingerprint stable" (fp d) (fp d);
  Alcotest.(check bool) "seed changes fingerprint" true
    (fp d <> fp { d with Calibrate.Engine.seed = 43 });
  Alcotest.(check bool) "sampler changes fingerprint" true
    (fp d <> fp { d with Calibrate.Engine.sampler = Calibrate.Engine.Importance { particles = 1000 } })

(* --- The R-D bridge --- *)

let test_rd_bridge_anchored () =
  let tech = Device.Tech.ptm_90nm in
  let params = Calibrate.Model.to_tech_params ~tech truth in
  (* at the anchored reference (V_gs = vdd, T = 400 K) the R-D prediction
     equals the JEP law at every time *)
  List.iter
    (fun time ->
      let rd =
        Nbti.Rd_model.dvth_dc params tech ~vgs:tech.Device.Tech.vdd
          ~vth0:tech.Device.Tech.vth_p ~temp_k:400.0 ~time
      in
      let jep =
        Calibrate.Model.predict truth ~time_s:time ~temp_k:400.0 ~vdd_v:tech.Device.Tech.vdd
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "bridge agrees at t=%g s" time)
        jep rd)
    [ 1.0; 1e4; Physics.Units.ten_years ];
  (* the Arrhenius factor carries over: agreement holds off-reference in T *)
  let rd330 =
    Nbti.Rd_model.dvth_dc params tech ~vgs:tech.Device.Tech.vdd ~vth0:tech.Device.Tech.vth_p
      ~temp_k:330.0 ~time:1e6
  in
  let jep330 = Calibrate.Model.predict truth ~time_s:1e6 ~temp_k:330.0 ~vdd_v:tech.Device.Tech.vdd in
  Alcotest.(check (float 1e-9)) "bridge agrees at 330 K" jep330 rd330

(* --- The calibrate wire op --- *)

let dispatch t line = Server.Json.of_string (Server.Service.handle_line t line)

let expect_ok t line =
  match Server.Protocol.response_result (dispatch t line) with
  | Ok r -> r
  | Error (code, m) -> Alcotest.fail (code ^ ": " ^ m)

let calibrate_request ?(timeout_ms = "") ?(extra = "") () =
  let data = Calibrate.Synth.generate ~seed:7 () in
  let csv = String.concat "\\n" (String.split_on_char '\n' (Calibrate.Dataset.to_csv data)) in
  Printf.sprintf
    "{\"v\":1,\"op\":\"calibrate\",\"csv\":\"%s\",\"chains\":2,\"warmup\":300,\"samples\":200%s%s}"
    csv timeout_ms extra

let test_wire_calibrate_roundtrip () =
  let t = Server.Service.create () in
  let result = expect_ok t (calibrate_request ()) in
  let open Server.Json in
  Alcotest.(check string) "kind" "calibration" (to_string_exn (member "kind" result));
  Alcotest.(check string) "sampler" "mh" (to_string_exn (member "sampler" result));
  Alcotest.(check bool) "not cached on first call" false (to_bool (member "cached" result));
  let params = member "params" result in
  Array.iter
    (fun name ->
      let p = member name params in
      Alcotest.(check bool) (name ^ " has finite mean") true
        (Float.is_finite (to_float (member "mean" p))))
    Calibrate.Model.param_names;
  Alcotest.(check bool) "rd bridge present" true (member_opt "rd_params" result <> None);
  (* an identical request is served from the result cache, bit-identically *)
  let again = expect_ok t (calibrate_request ()) in
  Alcotest.(check bool) "cached on repeat" true (to_bool (member "cached" again));
  let without_cached j =
    Server.Json.Assoc (List.filter (fun (k, _) -> k <> "cached") (to_assoc j))
  in
  Alcotest.(check bool) "cached result identical" true
    (without_cached result = without_cached again);
  (* a different seed is a different cache entry *)
  let other = expect_ok t (calibrate_request ~extra:",\"seed\":99" ()) in
  Alcotest.(check bool) "new config computes fresh" false (to_bool (member "cached" other));
  (* the op shows up in stats: per-endpoint metrics and the ops table *)
  let stats = expect_ok t "{\"v\":1,\"op\":\"stats\"}" in
  let endpoints = member "endpoints" stats in
  Alcotest.(check bool) "calibrate endpoint metrics" true
    (member_opt "calibrate" endpoints <> None);
  Alcotest.(check bool) "calibrate latency recorded" true
    (to_int (member "requests" (member "calibrate" endpoints)) >= 3);
  Alcotest.(check bool) "ops table lists calibrate" true
    (member_opt "calibrate" (member "ops" stats) <> None)

let test_wire_calibrate_deadline () =
  let t = Server.Service.create () in
  (* a large warmup against a 1 ms budget: the in-chain poll must abandon
     the sampler mid-flight with a structured deadline error *)
  let line =
    let data = Calibrate.Synth.generate ~seed:7 () in
    let csv = String.concat "\\n" (String.split_on_char '\n' (Calibrate.Dataset.to_csv data)) in
    Printf.sprintf
      "{\"v\":1,\"op\":\"calibrate\",\"csv\":\"%s\",\"chains\":4,\"warmup\":2000000,\"samples\":1000,\"timeout_ms\":1}"
      csv
  in
  let t0 = Unix.gettimeofday () in
  let response = dispatch t line in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match Server.Protocol.response_result response with
  | Ok _ -> Alcotest.fail "expected deadline_exceeded"
  | Error (code, _) -> Alcotest.(check string) "deadline_exceeded" "deadline_exceeded" code);
  Alcotest.(check bool)
    (Printf.sprintf "abandoned promptly (%.0f ms)" (elapsed *. 1000.0))
    true (elapsed < 2.0);
  (* the service stays healthy afterwards *)
  ignore (expect_ok t "{\"v\":1,\"op\":\"health\"}")

let test_wire_calibrate_errors () =
  let t = Server.Service.create () in
  let expect_error expected_code line =
    match Server.Protocol.response_result (dispatch t line) with
    | Ok _ -> Alcotest.fail ("expected " ^ expected_code ^ " for " ^ line)
    | Error (code, _) -> Alcotest.(check string) "code" expected_code code
  in
  (* malformed CSV: invalid_request with the 1-based line number detail *)
  let bad = "{\"v\":1,\"op\":\"calibrate\",\"csv\":\"1e3,400,1.0,0.01\\n1e4,broken,1.0,0.02\"}" in
  let response = dispatch t bad in
  (match Server.Protocol.response_result response with
  | Ok _ -> Alcotest.fail "expected a CSV error"
  | Error (code, _) -> Alcotest.(check string) "invalid_request" "invalid_request" code);
  Alcotest.(check (option int)) "line detail" (Some 2)
    (Server.Protocol.error_detail_int response "line");
  (* no measurements at all *)
  expect_error "bad_request" "{\"v\":1,\"op\":\"calibrate\"}";
  (* config limits are enforced before sampling *)
  expect_error "bad_request"
    "{\"v\":1,\"op\":\"calibrate\",\"csv\":\"1e3,400,1.0,0.01\",\"chains\":100000}";
  (* unknown op: structured invalid_request listing the supported ops *)
  let unknown = dispatch t "{\"v\":1,\"op\":\"teleport\"}" in
  (match Server.Protocol.response_result unknown with
  | Ok _ -> Alcotest.fail "expected invalid_request"
  | Error (code, _) -> Alcotest.(check string) "unknown op code" "invalid_request" code);
  let supported =
    match Server.Json.member_opt "error" unknown with
    | Some err -> begin
      match Server.Json.member_opt "supported_ops" err with
      | Some (Server.Json.List ops) ->
        List.filter_map
          (function Server.Json.String s -> Some s | _ -> None)
          ops
      | _ -> Alcotest.fail "unknown-op error lists supported_ops"
    end
    | None -> Alcotest.fail "error object present"
  in
  Alcotest.(check bool) "calibrate advertised" true (List.mem "calibrate" supported);
  Alcotest.(check (list string)) "table is the wire table" Server.Protocol.supported_ops supported

let test_calibrate_cache_key () =
  let data = Calibrate.Synth.generate ~seed:7 () in
  let other = Calibrate.Synth.generate ~seed:8 () in
  let spec config dataset = { Server.Protocol.dataset; config } in
  let d = Calibrate.Engine.default_config in
  let key = Server.Protocol.calibrate_cache_key in
  Alcotest.(check string) "stable" (key (spec d data)) (key (spec d data));
  Alcotest.(check bool) "dataset changes key" true
    (key (spec d data) <> key (spec d other));
  Alcotest.(check bool) "config changes key" true
    (key (spec d data) <> key (spec { d with Calibrate.Engine.seed = 1 } data))

let () =
  Alcotest.run "calibrate"
    [
      ( "stats",
        [
          Alcotest.test_case "weighted quantile" `Quick test_weighted_quantile;
          Alcotest.test_case "highest-density interval" `Quick test_hdi;
          Alcotest.test_case "autocorrelation ESS" `Quick test_ess;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "CSV round-trip" `Quick test_dataset_csv;
          Alcotest.test_case "errors carry line numbers" `Quick test_dataset_errors;
        ] );
      ( "inference",
        [
          Alcotest.test_case "recovers truth within 95% CIs" `Slow test_recovery_within_ci;
          Alcotest.test_case "tuned acceptance in range" `Slow test_acceptance_in_range;
          Alcotest.test_case "importance sampling cross-check" `Slow test_importance_cross_check;
          Alcotest.test_case "bit-identical at 1/2/4 domains" `Slow test_bit_identical_across_domains;
          Alcotest.test_case "config validation and fingerprints" `Quick test_engine_validation;
          Alcotest.test_case "R-D bridge anchored" `Quick test_rd_bridge_anchored;
        ] );
      ( "server",
        [
          Alcotest.test_case "wire round-trip and cache" `Slow test_wire_calibrate_roundtrip;
          Alcotest.test_case "deadline exceeded mid-sampling" `Quick test_wire_calibrate_deadline;
          Alcotest.test_case "error paths" `Quick test_wire_calibrate_errors;
          Alcotest.test_case "cache key" `Quick test_calibrate_cache_key;
        ] );
    ]
