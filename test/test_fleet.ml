(* Tests for the fleet layer: consistent-hash ring stability under
   membership change, singleflight coalescing, the backend state
   machine driven through the router, failover, fleet_degraded, warm
   cache handoff, graceful drain, and the retrying client against a
   refused endpoint. Backends are real Server.Service instances on
   temp Unix sockets; the router is exercised through handle_line. *)

let json_str = Server.Json.to_string

(* --- helpers: in-process backends on temp sockets --- *)

let fresh_socket_path () =
  let path = Filename.temp_file "nbti_fleet" ".sock" in
  Sys.remove path;
  path

let start_service_at t path =
  let ready = Mutex.create () in
  let cond = Condition.create () in
  let is_ready = ref false in
  let on_ready () =
    Mutex.lock ready;
    is_ready := true;
    Condition.signal cond;
    Mutex.unlock ready
  in
  let thread =
    Thread.create (fun () -> Server.Service.serve t (Server.Service.Unix_socket path) ~on_ready ()) ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait cond ready
  done;
  Mutex.unlock ready;
  thread

type backend_handle = {
  mutable service : Server.Service.t;
  path : string;
  mutable thread : Thread.t;
}

let start_backend ?faults () =
  let service = Server.Service.create ?faults () in
  let path = fresh_socket_path () in
  { service; path; thread = start_service_at service path }

let stop_backend b =
  Server.Service.stop b.service;
  Thread.join b.thread

let restart_backend b =
  b.service <- Server.Service.create ();
  b.thread <- start_service_at b.service b.path

let endpoint_of b = Server.Netline.Unix_socket b.path
let name_of b = Server.Netline.endpoint_to_string (endpoint_of b)

(* --- helpers: requests and responses --- *)

let analyze_line ?(circuit = "c17") years =
  let open Server.Protocol in
  json_str
    (json_of_envelope
       {
         id = None;
         timeout_ms = None;
         trace = None;
         request =
           Single
             (Analyze
                {
                  circuit = Named circuit;
                  flow = { default_flow_spec with years };
                  standby = Worst;
                });
       })

let job_key_of line =
  match Server.Protocol.envelope_of_json (Server.Json.of_string line) with
  | Ok { Server.Protocol.request = Server.Protocol.Single job; _ } ->
    let digest = Circuit.Netlist.digest (Circuit.Generators.c17 ()) in
    Server.Protocol.job_cache_key job ~circuit_digest:digest
  | _ -> Alcotest.fail "not a single-job request"

let response_ok response =
  match Server.Json.member_opt "ok" (Server.Json.of_string response) with
  | Some (Server.Json.Bool b) -> b
  | _ -> false

let response_error_code response =
  Server.Json.(to_string_exn (member "code" (member "error" (of_string response))))

let result_member key response =
  Server.Json.(member key (member "result" (of_string response)))

(* Normalize the one field the router path legitimately changes: which
   cache answered. Everything else must be byte-identical. *)
let strip_cached response =
  match Server.Json.of_string response with
  | Server.Json.Assoc kvs ->
    json_str
      (Server.Json.Assoc
         (List.map
            (fun (k, v) ->
              match (k, v) with
              | "result", Server.Json.Assoc rs ->
                (k, Server.Json.Assoc (List.filter (fun (k', _) -> k' <> "cached") rs))
              | _ -> (k, v))
            kvs))
  | other -> json_str other

(* Find a [years] value whose analyze job lands on the given backend —
   socket paths are random per run, so the ownership split is too. *)
let years_owned_by ring name =
  let rec go y =
    if y > 64.0 then Alcotest.fail "no key landed on backend (improbable)"
    else
      let key = job_key_of (analyze_line y) in
      if Fleet.Ring.owner ring ~live:(fun _ -> true) key = Some name then y else go (y +. 1.0)
  in
  go 1.0

(* --- Ring --- *)

let prop_remove_one_backend_is_stable =
  QCheck.Test.make ~name:"removing one of N backends remaps only its own keys" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 3 8) (int_bound 10_000)))
    (fun (n, salt) ->
      let names = List.init n (Printf.sprintf "unix:/tmp/fleet-%d.sock") in
      let keys = List.init 300 (Printf.sprintf "key-%d-%d" salt) in
      let removed = List.nth names (salt mod n) in
      let full = Fleet.Ring.create names in
      let reduced = Fleet.Ring.create (List.filter (fun m -> m <> removed) names) in
      let all_live _ = true in
      let moved = ref 0 in
      List.iter
        (fun k ->
          let before = Fleet.Ring.owner full ~live:all_live k in
          let after = Fleet.Ring.owner reduced ~live:all_live k in
          (* a key moves iff the removed backend owned it ... *)
          if before <> after && before <> Some removed then
            QCheck.Test.fail_reportf "key %s moved from %s" k (Option.get before);
          if before = Some removed then incr moved;
          (* ... and routing-time liveness filtering behaves exactly
             like rebuilding the ring without the dead backend *)
          if Fleet.Ring.owner full ~live:(fun m -> m <> removed) k <> after then
            QCheck.Test.fail_reportf "live-filter and rebuilt ring disagree on %s" k)
        keys;
      (* the removed backend owned ~1/N of the keys; allow generous
         vnode-variance slack *)
      float_of_int !moved /. 300.0 <= 2.5 /. float_of_int n)

let prop_add_one_backend_only_captures =
  QCheck.Test.make ~name:"adding a backend captures ~1/(N+1); nothing moves between old ones"
    ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 3 8) (int_bound 10_000)))
    (fun (n, salt) ->
      let names = List.init n (Printf.sprintf "unix:/tmp/fleet-%d.sock") in
      let added = "unix:/tmp/fleet-new.sock" in
      let keys = List.init 300 (Printf.sprintf "key-%d-%d" salt) in
      let before_ring = Fleet.Ring.create names in
      let after_ring = Fleet.Ring.create (names @ [ added ]) in
      let all_live _ = true in
      let captured = ref 0 in
      List.iter
        (fun k ->
          let before = Fleet.Ring.owner before_ring ~live:all_live k in
          let after = Fleet.Ring.owner after_ring ~live:all_live k in
          if before <> after then begin
            if after <> Some added then
              QCheck.Test.fail_reportf "key %s moved between old backends" k;
            incr captured
          end)
        keys;
      float_of_int !captured /. 300.0 <= 2.5 /. float_of_int (n + 1))

let test_ring_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true (raises (fun () -> Fleet.Ring.create []));
  Alcotest.(check bool) "duplicate" true (raises (fun () -> Fleet.Ring.create [ "a"; "a" ]));
  Alcotest.(check bool) "empty name" true (raises (fun () -> Fleet.Ring.create [ "" ]));
  Alcotest.(check bool) "vnodes < 1" true
    (raises (fun () -> Fleet.Ring.create ~vnodes:0 [ "a" ]));
  let ring = Fleet.Ring.create [ "a"; "b"; "c" ] in
  let owners = Fleet.Ring.owners ring "some-key" in
  Alcotest.(check int) "preference covers every backend" 3 (List.length owners);
  Alcotest.(check bool) "preference is a permutation" true
    (List.sort compare owners = [ "a"; "b"; "c" ]);
  Alcotest.(check (option string)) "no live backend" None
    (Fleet.Ring.owner ring ~live:(fun _ -> false) "some-key")

(* --- Singleflight --- *)

let test_singleflight_coalesces () =
  let sf = Fleet.Singleflight.create () in
  let computes = ref 0 in
  let f () =
    incr computes;
    Unix.sleepf 0.3;
    42
  in
  let results = Array.make 4 None in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () ->
            (* stagger so thread 0 leads and 1-3 arrive mid-flight *)
            if i > 0 then Unix.sleepf 0.05;
            results.(i) <- Some (Fleet.Singleflight.run sf "k" f))
          ())
  in
  Array.iter Thread.join threads;
  Alcotest.(check int) "computed once" 1 !computes;
  Alcotest.(check int) "three coalesced" 3 (Fleet.Singleflight.coalesced_total sf);
  Alcotest.(check int) "one flight" 1 (Fleet.Singleflight.flights_total sf);
  Array.iteri
    (fun i r ->
      match r with
      | Some (v, follower) ->
        Alcotest.(check int) "shared value" 42 v;
        Alcotest.(check bool) "leader vs follower" (i > 0) follower
      | None -> Alcotest.fail "thread produced no result")
    results;
  (* completion removes the key: the next call leads a fresh flight *)
  let v, follower = Fleet.Singleflight.run sf "k" f in
  Alcotest.(check int) "fresh flight recomputes" 2 !computes;
  Alcotest.(check bool) "fresh flight leads" false follower;
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check int) "two flights total" 2 (Fleet.Singleflight.flights_total sf)

exception Boom

let test_singleflight_shares_errors () =
  let sf = Fleet.Singleflight.create () in
  let f () =
    Unix.sleepf 0.2;
    raise Boom
  in
  let outcomes = Array.make 2 `Pending in
  let threads =
    Array.init 2 (fun i ->
        Thread.create
          (fun () ->
            if i > 0 then Unix.sleepf 0.05;
            outcomes.(i) <- (try ignore (Fleet.Singleflight.run sf "k" f); `Value
                             with Boom -> `Boom))
          ())
  in
  Array.iter Thread.join threads;
  Array.iter
    (fun o -> Alcotest.(check bool) "leader and follower both see the exception" true (o = `Boom))
    outcomes

(* --- Router: routing, failover, state machine, handoff --- *)

let counter router name = Server.Metrics.counter (Fleet.Router.metrics router) name

(* Pull every probe forward so a single pass is deterministic — the
   real probe thread spaces them out with capped-jitter backoff. *)
let force_probe router =
  List.iter
    (fun b -> Fleet.Backend.schedule_probe b ~at:0.0)
    (Fleet.Router.backend_list router);
  Fleet.Router.probe_due_backends router

let backend_state router name =
  match
    List.find_opt (fun b -> Fleet.Backend.name b = name) (Fleet.Router.backend_list router)
  with
  | Some b -> Fleet.Backend.state b
  | None -> Alcotest.fail ("unknown backend " ^ name)

let test_router_end_to_end () =
  let b0 = start_backend () in
  let b1 = start_backend () in
  let router = Fleet.Router.create [ endpoint_of b0; endpoint_of b1 ] in
  let ring = Fleet.Router.ring router in
  (* one request owned by each backend *)
  let line_a = analyze_line (years_owned_by ring (name_of b0)) in
  let line_b = analyze_line (years_owned_by ring (name_of b1)) in

  (* routed answers are byte-identical to a direct single-backend run
     (modulo the cached flag) *)
  let direct_service = Server.Service.create () in
  let direct = Server.Service.handle_line direct_service line_a in
  let routed = Fleet.Router.handle_line router line_a in
  Alcotest.(check bool) "routed ok" true (response_ok routed);
  Alcotest.(check string) "byte-identical to direct run" (strip_cached direct)
    (strip_cached routed);

  (* same key again: same owner, served from its cache *)
  let again = Fleet.Router.handle_line router line_a in
  Alcotest.(check bool) "repeat hits the owner's cache" true
    (result_member "cached" again = Server.Json.Bool true);

  (* warm b1 too *)
  Alcotest.(check bool) "b1-owned request ok" true
    (response_ok (Fleet.Router.handle_line router line_b));

  (* kill b0 mid-fleet: its requests fail over to b1 and still succeed *)
  stop_backend b0;
  let after_death = Fleet.Router.handle_line router line_a in
  Alcotest.(check bool) "failover answer ok" true (response_ok after_death);
  Alcotest.(check string) "failover answer still byte-identical" (strip_cached direct)
    (strip_cached after_death);
  Alcotest.(check bool) "failover recorded" true (counter router "failovers" >= 1);
  Alcotest.(check bool) "b0 suspected after request failure" true
    (backend_state router (name_of b0) = Fleet.Backend.Suspect);

  (* a probe pass confirms the death: Suspect -> Down *)
  force_probe router;
  Alcotest.(check bool) "b0 down after failed probe" true
    (backend_state router (name_of b0) = Fleet.Backend.Down);
  Alcotest.(check bool) "b1 still up" true
    (backend_state router (name_of b1) = Fleet.Backend.Up);

  (* the whole fleet dark: structured, retryable fleet_degraded *)
  stop_backend b1;
  let degraded = Fleet.Router.handle_line router line_b in
  Alcotest.(check bool) "degraded is an error" false (response_ok degraded);
  Alcotest.(check string) "degraded code" "fleet_degraded" (response_error_code degraded);
  Alcotest.(check bool) "degraded is retryable" true
    (Server.Protocol.retryable_code_string (response_error_code degraded));
  Alcotest.(check bool) "degraded carries retry hint" true
    (Server.Json.member_opt "retry_after_ms"
       (Server.Json.member "error" (Server.Json.of_string degraded))
    <> None);

  (* confirm b1's death too: Suspect -> Down *)
  force_probe router;
  Alcotest.(check bool) "b1 down after failed probe" true
    (backend_state router (name_of b1) = Fleet.Backend.Down);

  (* resurrection: a fresh process on b1's socket. Down -> Recovering ->
     (warm-cache handoff) -> Up. Nothing to pull (no Up peer), but the
     state machine must come back. *)
  restart_backend b1;
  force_probe router;
  Alcotest.(check bool) "b1 back up" true (backend_state router (name_of b1) = Fleet.Backend.Up);
  Alcotest.(check bool) "recovery recorded" true (counter router "recoveries" >= 1);

  (* warm b1 with the failover key again (it now owns line_a's answer
     in cache terms only if handed over -- recompute warms it) *)
  Alcotest.(check bool) "post-recovery request ok" true
    (response_ok (Fleet.Router.handle_line router line_a));

  (* resurrect b0 while b1 is Up and holds line_a (owned by b0): the
     recovery handoff must move that key to b0, so b0 answers it from
     cache without ever having computed it *)
  restart_backend b0;
  force_probe router;
  Alcotest.(check bool) "b0 back up" true (backend_state router (name_of b0) = Fleet.Backend.Up);
  Alcotest.(check bool) "handoff ran" true (counter router "handoffs" >= 1);
  Alcotest.(check bool) "handoff moved keys" true (counter router "handoff_keys" >= 1);
  let after_recovery = Fleet.Router.handle_line router line_a in
  Alcotest.(check bool) "recovered owner answers" true (response_ok after_recovery);
  Alcotest.(check bool) "answer came from the handed-over cache" true
    (result_member "cached" after_recovery = Server.Json.Bool true);
  Alcotest.(check string) "handed-over answer byte-identical" (strip_cached direct)
    (strip_cached after_recovery);

  stop_backend b0;
  stop_backend b1

let test_router_coalesces_identical_requests () =
  (* the one-shot compute delay holds the leader's flight open long
     enough that the second identical request must coalesce *)
  let faults =
    match Server.Faults.parse "compute=delay:400@1" with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  let b = start_backend ~faults () in
  let router = Fleet.Router.create [ endpoint_of b ] in
  let line = analyze_line 3.5 in
  let responses = Array.make 2 "" in
  let threads =
    Array.init 2 (fun i ->
        Thread.create
          (fun () ->
            if i > 0 then Unix.sleepf 0.1;
            responses.(i) <- Fleet.Router.handle_line router line)
          ())
  in
  Array.iter Thread.join threads;
  Alcotest.(check bool) "both ok" true (Array.for_all response_ok responses);
  Alcotest.(check string) "follower got the leader's bytes" responses.(0) responses.(1);
  Alcotest.(check bool) "coalescing recorded" true (counter router "coalesced" >= 1);
  (* the backend computed once: a third request is a cache hit, and the
     service saw exactly one analyze before it *)
  let third = Fleet.Router.handle_line router line in
  Alcotest.(check bool) "one compute for two requests" true
    (result_member "cached" third = Server.Json.Bool true);
  stop_backend b

(* --- distributed tracing, access log, federation, SLO --- *)

let traced_analyze_line ~trace_id ?parent years =
  let open Server.Protocol in
  json_str
    (json_of_envelope
       {
         id = None;
         timeout_ms = None;
         trace = Some { Obs.Ctx.trace_id; parent_span = parent };
         request =
           Single
             (Analyze
                {
                  circuit = Named "c17";
                  flow = { default_flow_spec with years };
                  standby = Worst;
                });
       })

let with_collector f =
  let c = Obs.Trace.create () in
  Obs.Trace.install c;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () -> f c)

let spans_named c name = List.filter (fun s -> s.Obs.Trace.name = name) (Obs.Trace.spans c)

let test_trace_propagates_through_fleet () =
  (* Router and backend live in one process, so one installed collector
     sees both sides: the client's trace id must ride the envelope
     through the router onto the backend, and the backend's request
     span must parent onto the exact forward attempt that reached it. *)
  let b = start_backend () in
  let router = Fleet.Router.create [ endpoint_of b ] in
  with_collector @@ fun c ->
  let tid = Obs.Trace.new_trace_id () in
  let response =
    Fleet.Router.handle_line router (traced_analyze_line ~trace_id:tid ~parent:"00c0ffee00c0ffee" 2.5)
  in
  Alcotest.(check bool) "traced request ok" true (response_ok response);
  (match spans_named c "fleet.forward" with
  | [ fwd ] ->
    Alcotest.(check (option string)) "forward span joins the client trace" (Some tid)
      fwd.Obs.Trace.trace_id;
    (* the backend's server-side request span parents onto that attempt *)
    let backend_request =
      List.find_opt
        (fun s -> s.Obs.Trace.name = "request" && s.Obs.Trace.cat = "server")
        (Obs.Trace.spans c)
    in
    (match backend_request with
    | Some s ->
      Alcotest.(check (option string)) "backend span joins the client trace" (Some tid)
        s.Obs.Trace.trace_id;
      Alcotest.(check bool) "backend span parents onto the forward attempt" true
        (s.Obs.Trace.parent = Obs.Trace.Remote (Obs.Trace.span_hex fwd.Obs.Trace.seq))
    | None -> Alcotest.fail "no backend request span recorded")
  | l -> Alcotest.failf "expected 1 forward span, got %d" (List.length l));
  (* the router's request root parents onto the span id the client sent *)
  (match
     List.find_opt
       (fun s -> s.Obs.Trace.name = "request" && s.Obs.Trace.cat = "fleet")
       (Obs.Trace.spans c)
   with
  | Some s ->
    Alcotest.(check (option string)) "router span joins the client trace" (Some tid)
      s.Obs.Trace.trace_id;
    Alcotest.(check bool) "router root parents onto the client span" true
      (s.Obs.Trace.parent = Obs.Trace.Remote "00c0ffee00c0ffee")
  | None -> Alcotest.fail "no router request span recorded");
  stop_backend b

let test_trace_survives_failover () =
  let b0 = start_backend () in
  let b1 = start_backend () in
  let router = Fleet.Router.create [ endpoint_of b0; endpoint_of b1 ] in
  let y = years_owned_by (Fleet.Router.ring router) (name_of b0) in
  stop_backend b0;
  with_collector @@ fun c ->
  let tid = Obs.Trace.new_trace_id () in
  let response = Fleet.Router.handle_line router (traced_analyze_line ~trace_id:tid y) in
  Alcotest.(check bool) "failover answer ok" true (response_ok response);
  (match spans_named c "fleet.forward" with
  | [ dead; live ] ->
    Alcotest.(check bool) "dead-owner attempt marked failed" false dead.Obs.Trace.ok;
    Alcotest.(check bool) "failover attempt succeeded" true live.Obs.Trace.ok;
    Alcotest.(check (option string)) "dead attempt keeps the trace" (Some tid)
      dead.Obs.Trace.trace_id;
    Alcotest.(check (option string)) "failover hop keeps the trace" (Some tid)
      live.Obs.Trace.trace_id
  | l -> Alcotest.failf "expected 2 forward spans (owner + failover), got %d" (List.length l));
  stop_backend b1

let test_trace_links_coalesced_followers () =
  let faults =
    match Server.Faults.parse "compute=delay:400@1" with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  let b = start_backend ~faults () in
  let router = Fleet.Router.create [ endpoint_of b ] in
  with_collector @@ fun c ->
  let tid_leader = Obs.Trace.new_trace_id () in
  let tid_follower = Obs.Trace.new_trace_id () in
  let responses = Array.make 2 "" in
  let threads =
    [|
      Thread.create
        (fun () ->
          responses.(0) <- Fleet.Router.handle_line router (traced_analyze_line ~trace_id:tid_leader 6.5))
        ();
      Thread.create
        (fun () ->
          Unix.sleepf 0.1;
          responses.(1) <-
            Fleet.Router.handle_line router (traced_analyze_line ~trace_id:tid_follower 6.5))
        ();
    |]
  in
  Array.iter Thread.join threads;
  Alcotest.(check bool) "both ok" true (Array.for_all response_ok responses);
  Alcotest.(check bool) "coalescing recorded" true (counter router "coalesced" >= 1);
  (* The follower rode the leader's flight under a different trace: an
     instant marker in the follower's trace records the leader's id so
     the two traces are linkable. *)
  (match spans_named c "fleet.coalesced" with
  | [ marker ] ->
    Alcotest.(check (option string)) "marker belongs to the follower trace"
      (Some tid_follower) marker.Obs.Trace.trace_id;
    Alcotest.(check bool) "marker names the leader trace" true
      (List.assoc_opt "leader_trace_id" marker.Obs.Trace.args
      = Some (Obs.Fields.Str tid_leader))
  | l -> Alcotest.failf "expected 1 coalesced marker, got %d" (List.length l));
  stop_backend b

let test_access_log_records_routing () =
  let b = start_backend () in
  let router = Fleet.Router.create [ endpoint_of b ] in
  let path = Filename.temp_file "fleet_access" ".jsonl" in
  let oc = open_out path in
  Fleet.Router.set_access_log router oc;
  Alcotest.(check bool) "request ok" true
    (response_ok (Fleet.Router.handle_line router (analyze_line 4.25)));
  Alcotest.(check bool) "stats ok" true
    (response_ok (Fleet.Router.handle_line router {|{"v":1,"op":"stats"}|}));
  close_out oc;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  (match lines with
  | [ forwarded; local ] ->
    let j = Server.Json.of_string forwarded in
    Alcotest.(check bool) "endpoint recorded" true
      (Server.Json.member_opt "endpoint" j = Some (Server.Json.String "analyze"));
    Alcotest.(check bool) "serving backend recorded" true
      (Server.Json.member_opt "backend" j = Some (Server.Json.String (name_of b)));
    Alcotest.(check bool) "failover_count recorded" true
      (Server.Json.member_opt "failover_count" j = Some (Server.Json.Int 0));
    Alcotest.(check bool) "coalesced recorded" true
      (Server.Json.member_opt "coalesced" j = Some (Server.Json.Bool false));
    (* locally-answered ops carry an explicit null backend (member_opt
       collapses present-null to absent, so inspect the assoc itself) *)
    let jl = Server.Json.of_string local in
    Alcotest.(check bool) "local op has null backend" true
      (List.assoc_opt "backend" (Server.Json.to_assoc jl) = Some Server.Json.Null)
  | l -> Alcotest.failf "expected 2 access records, got %d" (List.length l));
  stop_backend b

let test_cluster_metrics_federation () =
  let slo =
    match Obs.Slo.parse_spec "analyze=60s:99" with
    | Ok objectives -> Obs.Slo.create objectives
    | Error m -> Alcotest.fail m
  in
  let b = start_backend () in
  let router = Fleet.Router.create ~slo [ endpoint_of b ] in
  (* warm the backend with traffic, then let a probe pass scrape it *)
  Alcotest.(check bool) "request ok" true
    (response_ok (Fleet.Router.handle_line router (analyze_line 3.25)));
  force_probe router;
  let response = Fleet.Router.handle_line router {|{"v":1,"op":"cluster_metrics"}|} in
  Alcotest.(check bool) "cluster_metrics ok" true (response_ok response);
  Alcotest.(check bool) "every backend scraped" true
    (result_member "backends_scraped" response = Server.Json.Int 1);
  let text =
    Server.Json.to_string_exn (result_member "prometheus" response)
  in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-backend relabelled family" true
    (contains (Printf.sprintf "nbti_requests_total{backend=\"%s\"" (name_of b)));
  Alcotest.(check bool) "fleet-merged latency histogram" true
    (contains "nbti_fleet_request_latency_seconds_bucket{endpoint=\"analyze\"");
  Alcotest.(check bool) "probe RTT gauge" true
    (contains (Printf.sprintf "nbti_fleet_probe_rtt_seconds{backend=\"%s\"" (name_of b)));
  Alcotest.(check bool) "SLO burn rate exported" true
    (contains "nbti_slo_burn_rate{op=\"analyze\",window=\"5m\"}");
  (* burn rates also surface in the router's stats *)
  let stats = Fleet.Router.handle_line router {|{"v":1,"op":"stats"}|} in
  (match result_member "slo" stats with
  | Server.Json.List [ Server.Json.Assoc o ] ->
    Alcotest.(check bool) "stats slo names the op" true
      (List.assoc_opt "op" o = Some (Server.Json.String "analyze"))
  | _ -> Alcotest.fail "router stats carry no slo block");
  (* probe RTT percentiles appear on the backend's stats entry *)
  (match result_member "backends" stats with
  | Server.Json.List [ backend_json ] ->
    Alcotest.(check bool) "probe_rtt block present" true
      (Server.Json.member_opt "probe_rtt" backend_json <> None)
  | _ -> Alcotest.fail "router stats carry no backends list");
  stop_backend b

(* --- structured health and graceful drain --- *)

let test_health_states_and_drain () =
  let t = Server.Service.create () in
  let health () =
    Server.Json.member "result"
      (Server.Json.of_string (Server.Service.handle_line t {|{"v":1,"op":"health"}|}))
  in
  let h = health () in
  Alcotest.(check string) "wire-compat status field" "ok"
    Server.Json.(to_string_exn (member "status" h));
  Alcotest.(check string) "structured state" "ok" Server.Json.(to_string_exn (member "state" h));
  Alcotest.(check int) "pending" 0 Server.Json.(to_int (member "pending" h));
  Alcotest.(check bool) "max_pending present" true
    (Server.Json.member_opt "max_pending" h <> None);
  Server.Service.drain t;
  let h = health () in
  Alcotest.(check string) "draining state" "draining"
    Server.Json.(to_string_exn (member "state" h));
  Alcotest.(check string) "status stays ok for old probes" "ok"
    Server.Json.(to_string_exn (member "status" h))

let test_cache_export_import_roundtrip () =
  let src = Server.Service.create () in
  let line = analyze_line 7.25 in
  Alcotest.(check bool) "computed on source" true
    (response_ok (Server.Service.handle_line src line));
  let exported =
    Server.Json.member "result"
      (Server.Json.of_string
         (Server.Service.handle_line src {|{"v":1,"op":"cache_export","max_entries":8}|}))
  in
  let entries = Server.Json.member "entries" exported in
  Alcotest.(check bool) "export has entries" true
    (match entries with Server.Json.List (_ :: _) -> true | _ -> false);
  (* import the snapshot into a fresh service: the same request is now
     a cache hit there, payload byte-identical *)
  let dst = Server.Service.create () in
  let import_line =
    json_str
      (Server.Json.Assoc
         [
           ("v", Server.Json.Int Server.Protocol.version);
           ("op", Server.Json.String "cache_import");
           ("entries", entries);
         ])
  in
  let imported = Server.Service.handle_line dst import_line in
  Alcotest.(check bool) "import ok" true (response_ok imported);
  Alcotest.(check bool) "imported count positive" true
    (Server.Json.(to_int (member "imported" (member "result" (of_string imported)))) >= 1);
  let served = Server.Service.handle_line dst line in
  Alcotest.(check bool) "import produces a cache hit" true
    (result_member "cached" served = Server.Json.Bool true);
  Alcotest.(check string) "imported payload byte-identical"
    (strip_cached (Server.Service.handle_line src line))
    (strip_cached served)

(* --- client: connection refusal is retryable --- *)

let test_client_retries_refused_connection () =
  let path = fresh_socket_path () in
  let client = Server.Client.create (Server.Netline.Unix_socket path) in
  let sleeps = ref 0 in
  let policy = { Server.Retry.retries = 2; base_ms = 1; cap_ms = 2 } in
  (match
     Server.Client.call client ~policy
       ~on_retry:(fun ~attempt:_ ~reason:_ ~sleep_ms:_ -> incr sleeps)
       {|{"v":1,"op":"health"}|}
   with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error { Server.Client.attempts; last_response; _ } ->
    Alcotest.(check int) "every configured retry consumed" 3 attempts;
    Alcotest.(check int) "backed off between attempts" 2 !sleeps;
    Alcotest.(check bool) "no response to surface" true (last_response = None));
  Server.Client.close client;
  (* a server that comes up mid-retry turns the same call into a
     success: refused connections behave exactly like overload *)
  let service = Server.Service.create () in
  let starter =
    Thread.create
      (fun () ->
        Unix.sleepf 0.15;
        ignore (start_service_at service path))
      ()
  in
  let client = Server.Client.create (Server.Netline.Unix_socket path) in
  let policy = { Server.Retry.retries = 10; base_ms = 50; cap_ms = 100 } in
  (match Server.Client.call client ~policy {|{"v":1,"op":"health"}|} with
  | Ok response -> Alcotest.(check bool) "healthy once up" true (response_ok response)
  | Error { Server.Client.reason; _ } -> Alcotest.fail ("still failing: " ^ reason));
  Server.Client.close client;
  Thread.join starter;
  Server.Service.stop service

(* --- router rejects backend-local ops --- *)

let test_router_rejects_cache_ops () =
  let b = start_backend () in
  let router = Fleet.Router.create [ endpoint_of b ] in
  let r = Fleet.Router.handle_line router {|{"v":1,"op":"cache_export"}|} in
  Alcotest.(check bool) "cache_export rejected at router" false (response_ok r);
  Alcotest.(check string) "invalid_request" "invalid_request" (response_error_code r);
  (* health/stats answer locally with fleet shape *)
  let h = Server.Json.member "result"
      (Server.Json.of_string (Fleet.Router.handle_line router {|{"v":1,"op":"health"}|}))
  in
  Alcotest.(check string) "router role" "router"
    Server.Json.(to_string_exn (member "role" h));
  let s = Server.Json.member "result"
      (Server.Json.of_string (Fleet.Router.handle_line router {|{"v":1,"op":"stats"}|}))
  in
  Alcotest.(check bool) "stats lists backends" true
    (match Server.Json.member "backends" s with
    | Server.Json.List [ _ ] -> true
    | _ -> false);
  stop_backend b

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_remove_one_backend_is_stable; prop_add_one_backend_only_captures ]

let () =
  Alcotest.run "fleet"
    [
      ( "ring",
        Alcotest.test_case "validation and preference" `Quick test_ring_validation :: props );
      ( "singleflight",
        [
          Alcotest.test_case "coalesces concurrent callers" `Quick test_singleflight_coalesces;
          Alcotest.test_case "shares errors" `Quick test_singleflight_shares_errors;
        ] );
      ( "router",
        [
          Alcotest.test_case "route, failover, degrade, recover, handoff" `Quick
            test_router_end_to_end;
          Alcotest.test_case "coalesces identical requests" `Quick
            test_router_coalesces_identical_requests;
          Alcotest.test_case "rejects backend-local cache ops" `Quick
            test_router_rejects_cache_ops;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace id propagates client -> router -> backend" `Quick
            test_trace_propagates_through_fleet;
          Alcotest.test_case "trace survives failover" `Quick test_trace_survives_failover;
          Alcotest.test_case "coalesced follower links the leader trace" `Quick
            test_trace_links_coalesced_followers;
          Alcotest.test_case "access log records routing fields" `Quick
            test_access_log_records_routing;
          Alcotest.test_case "cluster_metrics federates backends + SLO" `Quick
            test_cluster_metrics_federation;
        ] );
      ( "service",
        [
          Alcotest.test_case "structured health and drain" `Quick test_health_states_and_drain;
          Alcotest.test_case "cache export/import round trip" `Quick
            test_cache_export_import_roundtrip;
        ] );
      ( "client",
        [
          Alcotest.test_case "refused connection retries like overload" `Quick
            test_client_retries_refused_connection;
        ] );
    ]
