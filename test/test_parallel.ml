(* Tests for the deterministic work pool and its hot-path integrations:
   ordering, exception propagation, RNG stream splitting, bit-exactness
   across domain counts, reentrancy, and batch fan-out on the server. *)

let with_pool = Parallel.Pool.with_pool

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

(* --- core pool semantics --- *)

let test_map_order () =
  with_pool ~domains:4 (fun p ->
      let xs = Array.init 100 (fun i -> i) in
      Alcotest.(check (array int)) "map" (Array.map (fun x -> x * x) xs)
        (Parallel.Pool.map p (fun x -> x * x) xs);
      Alcotest.(check (array int)) "mapi"
        (Array.mapi (fun i x -> (i * 1000) + x) xs)
        (Parallel.Pool.mapi p (fun i x -> (i * 1000) + x) xs);
      Alcotest.(check (array int)) "init" (Array.init 50 (fun i -> 2 * i))
        (Parallel.Pool.init p 50 (fun i -> 2 * i));
      Alcotest.(check (array int)) "empty" [||] (Parallel.Pool.map p (fun x -> x) [||]);
      Alcotest.(check (array int)) "singleton" [| 9 |] (Parallel.Pool.map p (fun x -> x * 3) [| 3 |]);
      Alcotest.(check (array int)) "chunked"
        (Array.init 37 (fun i -> i + 1))
        (Parallel.Pool.init p ~chunk:5 37 (fun i -> i + 1)))

let test_map_reduce_ordered () =
  (* The reduce is non-commutative (string concatenation): any
     completion-order or per-chunk folding would scramble it. *)
  let expect =
    String.concat "" (List.map (fun i -> string_of_int i ^ ";") (List.init 64 (fun i -> i)))
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun p ->
          let got =
            Parallel.Pool.map_reduce p ~chunk:3
              ~map:(fun x -> string_of_int x ^ ";")
              ~reduce:( ^ ) ~init:""
              (Array.init 64 (fun i -> i))
          in
          Alcotest.(check string) (Printf.sprintf "ordered @ %d domains" domains) expect got))
    [ 1; 2; 4 ]

exception Boom of int

let test_exception_propagation () =
  with_pool ~domains:4 (fun p ->
      (match Parallel.Pool.init p 64 (fun i -> if i = 17 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom _ -> ());
      (* the pool survives a failed region *)
      Alcotest.(check (array int)) "reuse after failure" (Array.init 32 (fun i -> i + 1))
        (Parallel.Pool.init p 32 (fun i -> i + 1)))

let test_many_regions_one_pool () =
  with_pool ~domains:3 (fun p ->
      for n = 0 to 200 do
        let ys = Parallel.Pool.init p (n mod 17) (fun i -> i * n) in
        Alcotest.(check (array int)) "region" (Array.init (n mod 17) (fun i -> i * n)) ys
      done)

let test_nested_calls_inline () =
  (* An item that re-enters the pool must run inline, not deadlock. *)
  with_pool ~domains:4 (fun p ->
      let ys =
        Parallel.Pool.init p 8 (fun i ->
            Array.fold_left ( + ) 0 (Parallel.Pool.init p 10 (fun j -> (i * 10) + j)))
      in
      let expect = Array.init 8 (fun i -> Array.fold_left ( + ) 0 (Array.init 10 (fun j -> (i * 10) + j))) in
      Alcotest.(check (array int)) "nested" expect ys)

let test_shutdown_then_inline () =
  let p = Parallel.Pool.create ~domains:4 () in
  Alcotest.(check int) "domains" 4 (Parallel.Pool.domains p);
  Parallel.Pool.shutdown p;
  Parallel.Pool.shutdown p;
  (* idempotent; pool still usable inline *)
  Alcotest.(check (array int)) "inline after shutdown" (Array.init 5 (fun i -> i))
    (Parallel.Pool.init p 5 (fun i -> i))

(* --- RNG stream splitting --- *)

let test_split_streams_deterministic () =
  let draw () =
    Array.map (fun r -> Physics.Rng.int64 r) (Parallel.Pool.split_streams (Physics.Rng.create ~seed:5) 8)
  in
  Alcotest.(check (array int64)) "stable across calls" (draw ()) (draw ());
  (* parent advances exactly n times: an equal-seed parent split by hand
     gives the same streams *)
  let rng = Physics.Rng.create ~seed:5 in
  let by_hand = Array.init 8 (fun _ -> Physics.Rng.int64 (Physics.Rng.split rng)) in
  Alcotest.(check (array int64)) "sequential splits" by_hand (draw ())

let test_init_rng_domain_invariant () =
  let study domains =
    with_pool ~domains (fun p ->
        Parallel.Pool.init_rng p ~rng:(Physics.Rng.create ~seed:11) 40 (fun rng i ->
            Physics.Rng.gaussian rng ~mean:(float_of_int i) ~sigma:1.0))
  in
  let base = study 1 in
  List.iter
    (fun domains ->
      let got = study domains in
      Alcotest.(check int) "length" (Array.length base) (Array.length got);
      Array.iteri
        (fun i x ->
          Alcotest.(check bool) (Printf.sprintf "bit-exact sample %d @ %d domains" i domains) true
            (bits_equal base.(i) x))
        got)
    [ 2; 4 ]

(* --- hot paths: bit-identical across domain counts --- *)

let c17 = lazy (Circuit.Generators.by_name "c17")

let c17_sp =
  lazy
    (let net = Lazy.force c17 in
     Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5))

let test_process_var_bit_exact () =
  let net = Lazy.force c17 in
  let config =
    Variation.Process_var.default_config ~n_samples:24 (Aging.Circuit_aging.default_config ())
  in
  let study domains =
    with_pool ~domains (fun pool ->
        Variation.Process_var.run ~pool config net ~node_sp:(Lazy.force c17_sp)
          ~standby:Aging.Circuit_aging.Standby_all_stressed ~rng:(Physics.Rng.create ~seed:3))
  in
  let base = study 1 in
  List.iter
    (fun domains ->
      let got = study domains in
      Array.iteri
        (fun i (s : Variation.Process_var.sample) ->
          let b = base.Variation.Process_var.samples.(i) in
          Alcotest.(check bool) (Printf.sprintf "fresh %d @ %d domains" i domains) true
            (bits_equal b.Variation.Process_var.fresh_delay s.Variation.Process_var.fresh_delay);
          Alcotest.(check bool) (Printf.sprintf "aged %d @ %d domains" i domains) true
            (bits_equal b.Variation.Process_var.aged_delay s.Variation.Process_var.aged_delay))
        got.Variation.Process_var.samples;
      Alcotest.(check bool) "summary equal" true
        (base.Variation.Process_var.fresh = got.Variation.Process_var.fresh
        && base.Variation.Process_var.aged = got.Variation.Process_var.aged))
    [ 2; 4 ]

let test_signal_prob_mc_bit_exact () =
  let net = Lazy.force c17 in
  let input_sp = Logic.Signal_prob.uniform_inputs net 0.5 in
  let mc domains =
    with_pool ~domains (fun pool ->
        Logic.Signal_prob.monte_carlo ~pool net ~rng:(Physics.Rng.create ~seed:7) ~input_sp
          ~n_vectors:1000)
  in
  let base = mc 1 in
  List.iter
    (fun domains ->
      let got = mc domains in
      Array.iteri
        (fun i x ->
          Alcotest.(check bool) (Printf.sprintf "sp %d @ %d domains" i domains) true
            (bits_equal base.(i) x))
        got)
    [ 2; 4 ]

let test_activity_mc_bit_exact () =
  let net = Lazy.force c17 in
  let input_sp = Logic.Signal_prob.uniform_inputs net 0.5 in
  let mc domains =
    with_pool ~domains (fun pool ->
        Logic.Activity.monte_carlo ~pool net ~rng:(Physics.Rng.create ~seed:9) ~input_sp
          ~n_pairs:500)
  in
  let base = mc 1 in
  List.iter
    (fun domains -> Alcotest.(check bool) (Printf.sprintf "@ %d domains" domains) true (base = mc domains))
    [ 2; 4 ]

let test_mlv_search_domain_invariant () =
  let net = Lazy.force c17 in
  let tables =
    Leakage.Circuit_leakage.build_tables Device.Tech.ptm_90nm net ~temp_k:400.0
  in
  let search domains =
    with_pool ~domains (fun par ->
        Ivc.Mlv.probability_based ~par tables net ~rng:(Physics.Rng.create ~seed:4) ~pool:16
          ~max_rounds:5 ())
  in
  let base_set, base_stats = search 1 in
  List.iter
    (fun domains ->
      let set, stats = search domains in
      Alcotest.(check int) "rounds" base_stats.Ivc.Mlv.rounds stats.Ivc.Mlv.rounds;
      Alcotest.(check int) "evaluations" base_stats.Ivc.Mlv.evaluations stats.Ivc.Mlv.evaluations;
      Alcotest.(check int) "set size" (List.length base_set) (List.length set);
      List.iter2
        (fun (a : Ivc.Mlv.candidate) (b : Ivc.Mlv.candidate) ->
          Alcotest.(check string)
            (Printf.sprintf "vector @ %d domains" domains)
            (Ivc.Mlv.vector_key a.Ivc.Mlv.vector)
            (Ivc.Mlv.vector_key b.Ivc.Mlv.vector);
          Alcotest.(check bool) "leakage bits" true (bits_equal a.Ivc.Mlv.leakage b.Ivc.Mlv.leakage))
        base_set set)
    [ 2; 4 ]

let test_mlv_exhaustive_domain_invariant () =
  let net = Lazy.force c17 in
  let tables = Leakage.Circuit_leakage.build_tables Device.Tech.ptm_90nm net ~temp_k:400.0 in
  let best domains = with_pool ~domains (fun par -> Ivc.Mlv.exhaustive ~par tables net) in
  let base = best 1 in
  List.iter
    (fun domains ->
      let got = best domains in
      Alcotest.(check string)
        (Printf.sprintf "vector @ %d domains" domains)
        (Ivc.Mlv.vector_key base.Ivc.Mlv.vector)
        (Ivc.Mlv.vector_key got.Ivc.Mlv.vector);
      Alcotest.(check bool) "leakage bits" true (bits_equal base.Ivc.Mlv.leakage got.Ivc.Mlv.leakage))
    [ 2; 4 ]

let test_vector_key () =
  Alcotest.(check string) "empty" "" (Ivc.Mlv.vector_key [||]);
  Alcotest.(check string) "0110 packs to 0x06" "\006" (Ivc.Mlv.vector_key [| false; true; true; false |]);
  Alcotest.(check string) "9 bits spill" "\255\001" (Ivc.Mlv.vector_key (Array.make 9 true));
  Alcotest.(check bool) "distinct vectors, distinct keys" true
    (Ivc.Mlv.vector_key [| true; false |] <> Ivc.Mlv.vector_key [| false; true |])

(* --- server batch fan-out --- *)

let batch_line =
  {|{"v":1,"id":"b1","op":"batch","jobs":[{"op":"analyze","circuit":"c17","standby":"worst"},{"op":"analyze","circuit":"nope"},{"op":"analyze","circuit":"c17","standby":"best"},{"op":"analyze","circuit":"c432","standby":"worst"}]}|}

let batch_kinds_and_circuits response_line =
  let json = Server.Json.of_string response_line in
  Alcotest.(check bool) "ok" true (Server.Json.to_bool (Server.Json.member "ok" json));
  let results =
    match Server.Json.member "results" (Server.Json.member "result" json) with
    | Server.Json.List l -> l
    | _ -> Alcotest.fail "results not a list"
  in
  List.map
    (fun r ->
      match Server.Json.member "kind" r with
      | Server.Json.String "error" -> "error"
      | Server.Json.String _ -> (
        match Server.Json.member_opt "circuit" r with
        | Some (Server.Json.String c) -> c
        | _ -> Alcotest.fail "missing circuit")
      | _ -> Alcotest.fail "missing kind")
    results

let test_batch_order_and_errors () =
  (* Responses must arrive in request order — including the in-place
     error for the bad job — whatever the pool's domain count. *)
  let run domains =
    with_pool ~domains (fun pool ->
        let t = Server.Service.create ~pool () in
        Server.Service.handle_line t batch_line)
  in
  let base = run 1 in
  Alcotest.(check (list string)) "request order" [ "c17"; "error"; "c17"; "c432" ]
    (batch_kinds_and_circuits base);
  List.iter
    (fun domains ->
      Alcotest.(check string) (Printf.sprintf "identical response @ %d domains" domains) base
        (run domains))
    [ 2; 4 ]

let test_stats_reports_pool () =
  with_pool ~domains:2 (fun pool ->
      let t = Server.Service.create ~pool () in
      ignore (Server.Service.handle_line t {|{"v":1,"op":"analyze","circuit":"c17"}|});
      let stats =
        Server.Json.of_string (Server.Service.handle_line t {|{"v":1,"op":"stats"}|})
      in
      let pool_json = Server.Json.member "pool" (Server.Json.member "result" stats) in
      Alcotest.(check int) "domains" 2 (Server.Json.to_int (Server.Json.member "domains" pool_json));
      Alcotest.(check bool) "counted items" true
        (Server.Json.to_int (Server.Json.member "items" pool_json) > 0))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map/mapi/init order" `Quick test_map_order;
          Alcotest.test_case "map_reduce is ordered" `Quick test_map_reduce_ordered;
          Alcotest.test_case "worker exception propagates" `Quick test_exception_propagation;
          Alcotest.test_case "many regions on one pool" `Quick test_many_regions_one_pool;
          Alcotest.test_case "nested calls run inline" `Quick test_nested_calls_inline;
          Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_then_inline;
        ] );
      ( "rng",
        [
          Alcotest.test_case "split_streams deterministic" `Quick test_split_streams_deterministic;
          Alcotest.test_case "init_rng domain-invariant" `Quick test_init_rng_domain_invariant;
        ] );
      ( "hot paths",
        [
          Alcotest.test_case "process variation bit-exact" `Quick test_process_var_bit_exact;
          Alcotest.test_case "signal-prob MC bit-exact" `Quick test_signal_prob_mc_bit_exact;
          Alcotest.test_case "activity MC bit-exact" `Quick test_activity_mc_bit_exact;
          Alcotest.test_case "MLV search domain-invariant" `Quick test_mlv_search_domain_invariant;
          Alcotest.test_case "MLV exhaustive domain-invariant" `Quick
            test_mlv_exhaustive_domain_invariant;
          Alcotest.test_case "vector_key packing" `Quick test_vector_key;
        ] );
      ( "server",
        [
          Alcotest.test_case "batch order and errors" `Quick test_batch_order_and_errors;
          Alcotest.test_case "stats reports pool counters" `Quick test_stats_reports_pool;
        ] );
    ]
