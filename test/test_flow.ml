(* Tests for the Fig. 6 platform and the report renderer. *)

let cfg = Flow.Platform.default_config ()
let c17 = Circuit.Generators.c17 ()
let prepared = Flow.Platform.prepare cfg c17

let test_prepare () =
  Alcotest.(check string) "netlist kept" "c17" (Flow.Platform.netlist prepared).Circuit.Netlist.name;
  let sp = Flow.Platform.node_sp prepared in
  Alcotest.(check int) "SP per node" (Circuit.Netlist.n_nodes c17) (Array.length sp);
  Array.iter (fun p -> Alcotest.(check bool) "probabilities" true (p >= 0.0 && p <= 1.0)) sp

let test_analyze_worst () =
  let a = Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_stressed in
  Alcotest.(check bool) "aged slower" true (a.Flow.Platform.aged_delay > a.Flow.Platform.fresh_delay);
  Alcotest.(check (float 1e-12)) "degradation consistent"
    ((a.Flow.Platform.aged_delay -. a.Flow.Platform.fresh_delay) /. a.Flow.Platform.fresh_delay)
    a.Flow.Platform.degradation;
  Alcotest.(check int) "stats wired" 6 a.Flow.Platform.stats.Circuit.Netlist.n_gates

let test_analyze_leakage_ordering () =
  let worst = Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_stressed in
  let best = Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_relaxed in
  let vec =
    Flow.Platform.analyze cfg prepared
      ~standby:(Aging.Circuit_aging.Standby_vector (Array.make 5 true))
  in
  Alcotest.(check bool) "bounds bracket the vector" true
    (vec.Flow.Platform.standby_leakage >= best.Flow.Platform.standby_leakage
    && vec.Flow.Platform.standby_leakage <= worst.Flow.Platform.standby_leakage);
  Alcotest.(check bool) "active leakage within bounds" true
    (worst.Flow.Platform.active_leakage > best.Flow.Platform.standby_leakage
    && worst.Flow.Platform.active_leakage < worst.Flow.Platform.standby_leakage)

let test_analytic_sp_config () =
  let cfg2 = { cfg with Flow.Platform.sp_method = Flow.Platform.Sp_analytic } in
  let p2 = Flow.Platform.prepare cfg2 c17 in
  let a = Flow.Platform.analyze cfg2 p2 ~standby:Aging.Circuit_aging.Standby_all_stressed in
  let b = Flow.Platform.analyze cfg prepared ~standby:Aging.Circuit_aging.Standby_all_stressed in
  (* Analytic and Monte-Carlo SPs must agree closely on c17. *)
  Alcotest.(check bool) "estimator-insensitive result" true
    (Float.abs (a.Flow.Platform.degradation -. b.Flow.Platform.degradation)
     /. b.Flow.Platform.degradation
    < 0.05)

let test_optimize_ivc () =
  let result, stats =
    Flow.Platform.optimize_ivc cfg prepared ~rng:(Physics.Rng.create ~seed:61) ()
  in
  Alcotest.(check bool) "produced candidates" true (result.Ivc.Co_opt.all <> []);
  Alcotest.(check bool) "search ran" true (stats.Ivc.Mlv.evaluations > 0)

let test_optimize_st () =
  let r = Flow.Platform.optimize_st cfg prepared ~style:Sleep.St_insertion.Footer ~beta:0.03 () in
  Alcotest.(check (float 0.0)) "footer" 0.0 r.Sleep.St_insertion.st_dvth

let test_internal_node_potential () =
  let p = Flow.Platform.internal_node_potential cfg prepared in
  Alcotest.(check bool) "positive potential" true (p.Ivc.Internal_node.potential > 0.0)

let test_determinism_c432 () =
  (* Two full runs with the same seed and config must be bit-identical —
     this is the assumption behind the analysis service's
     content-addressed result cache. *)
  let cfg = Flow.Platform.default_config () in
  let run () =
    let net = Circuit.Generators.by_name "c432" in
    let p = Flow.Platform.prepare cfg net in
    Flow.Platform.analyze cfg p ~standby:Aging.Circuit_aging.Standby_all_stressed
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical analysis records" true (a = b);
  Alcotest.(check (float 0.0)) "aged delay exact" a.Flow.Platform.aged_delay
    b.Flow.Platform.aged_delay

let test_fingerprints () =
  let cfg = Flow.Platform.default_config () in
  Alcotest.(check string) "config fingerprint deterministic"
    (Flow.Platform.config_fingerprint cfg)
    (Flow.Platform.config_fingerprint (Flow.Platform.default_config ()));
  let analytic = { cfg with Flow.Platform.sp_method = Flow.Platform.Sp_analytic } in
  Alcotest.(check bool) "SP method changes both fingerprints" true
    (Flow.Platform.config_fingerprint cfg <> Flow.Platform.config_fingerprint analytic
    && Flow.Platform.prepare_fingerprint cfg <> Flow.Platform.prepare_fingerprint analytic);
  (* lifetime is an analyze-only field: the full fingerprint moves, the
     prepare fingerprint (SPs + leakage tables) must not *)
  let aging = Aging.Circuit_aging.default_config ~time:(Physics.Units.years 3.0) () in
  let shorter = { cfg with Flow.Platform.aging } in
  Alcotest.(check bool) "lifetime changes config fingerprint" true
    (Flow.Platform.config_fingerprint cfg <> Flow.Platform.config_fingerprint shorter);
  Alcotest.(check string) "lifetime keeps prepare fingerprint"
    (Flow.Platform.prepare_fingerprint cfg)
    (Flow.Platform.prepare_fingerprint shorter)

(* --- Report --- *)

let test_table_rendering () =
  let t =
    {
      Flow.Report.title = "T";
      header = [ "a"; "bbbb" ];
      rows = [ [ "1"; "2" ]; [ "333"; "4" ] ];
    }
  in
  let s = Format.asprintf "%a" Flow.Report.pp_table t in
  Alcotest.(check bool) "title present" true (String.length s > 0 && String.sub s 0 1 = "T");
  (* Aligned: every line has the same length. *)
  let lines = String.split_on_char '\n' (String.trim s) in
  (match lines with
  | _title :: header :: rule :: rows ->
    List.iter
      (fun l -> Alcotest.(check int) "aligned width" (String.length header) (String.length l))
      (rule :: rows)
  | _ -> Alcotest.fail "unexpected shape")

let test_table_arity_check () =
  let t = { Flow.Report.title = "T"; header = [ "a"; "b" ]; rows = [ [ "only-one" ] ] } in
  Alcotest.(check bool) "bad row rejected" true
    (try
       ignore (Format.asprintf "%a" Flow.Report.pp_table t);
       false
     with Invalid_argument _ -> true)

let test_series () =
  let t = Flow.Report.series ~title:"fig" ~x_label:"t" ~y_labels:[ "y1"; "y2" ] [ (1.0, [ 2.0; 3.0 ]) ] in
  Alcotest.(check int) "columns" 3 (List.length t.Flow.Report.header);
  Alcotest.(check int) "rows" 1 (List.length t.Flow.Report.rows)

let test_cells () =
  Alcotest.(check string) "pct" "4.32" (Flow.Report.cell_pct 0.0432);
  Alcotest.(check string) "mv" "46.00" (Flow.Report.cell_mv 0.046);
  Alcotest.(check string) "ps" "87.8" (Flow.Report.cell_ps 87.8e-12);
  Alcotest.(check string) "float" "1.500" (Flow.Report.cell_f 1.5)

let test_vector_string () =
  Alcotest.(check string) "short" "010" (Flow.Report.vector_string [| false; true; false |]);
  let long = Array.make 30 true in
  let s = Flow.Report.vector_string long in
  Alcotest.(check bool) "truncated" true (String.length s = 27 && String.sub s 24 3 = "...")

let () =
  Alcotest.run "flow"
    [
      ( "platform",
        [
          Alcotest.test_case "prepare" `Quick test_prepare;
          Alcotest.test_case "analyze worst" `Quick test_analyze_worst;
          Alcotest.test_case "leakage ordering" `Quick test_analyze_leakage_ordering;
          Alcotest.test_case "analytic SP config" `Quick test_analytic_sp_config;
          Alcotest.test_case "IVC optimization" `Quick test_optimize_ivc;
          Alcotest.test_case "ST optimization" `Quick test_optimize_st;
          Alcotest.test_case "internal node potential" `Quick test_internal_node_potential;
          Alcotest.test_case "determinism on c432" `Quick test_determinism_c432;
          Alcotest.test_case "fingerprints" `Quick test_fingerprints;
        ] );
      ( "report",
        [
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "vector string" `Quick test_vector_string;
        ] );
    ]
