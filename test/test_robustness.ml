(* Chaos and fault-tolerance tests for the serving layer: deadlines,
   admission control / load shedding, fault injection, malformed input,
   vanished peers, the byte-bounded cache and the retry schedule. *)

let ok_or_fail = function Ok v -> v | Error m -> Alcotest.fail m

let faults spec = ok_or_fail (Server.Faults.parse spec)

let response_code json =
  match Server.Protocol.response_result json with
  | Ok _ -> None
  | Error (code, _) -> Some code

let dispatch t line = Server.Json.of_string (Server.Service.handle_line t line)

let expect_code t code line =
  match response_code (dispatch t line) with
  | Some c -> Alcotest.(check string) ("code for " ^ line) code c
  | None -> Alcotest.fail ("expected error " ^ code ^ " for " ^ line)

let expect_ok t line =
  match Server.Protocol.response_result (dispatch t line) with
  | Ok r -> r
  | Error (code, m) -> Alcotest.fail (code ^ ": " ^ m)

(* --- Budget --- *)

let test_budget_basics () =
  let open Parallel.Budget in
  Alcotest.(check bool) "unlimited never expires" false (expired unlimited);
  Alcotest.(check bool) "unlimited reports so" true (is_unlimited unlimited);
  Alcotest.(check bool) "unlimited has no remaining" true (remaining_s unlimited = None);
  check unlimited;
  let b = of_timeout_ms 0 in
  Unix.sleepf 0.002;
  Alcotest.(check bool) "zero budget expires" true (expired b);
  Alcotest.(check bool) "check raises" true
    (try
       check b;
       false
     with Deadline_exceeded -> true);
  let long = of_timeout_s 60.0 in
  Alcotest.(check bool) "fresh budget not expired" false (expired long);
  match remaining_s long with
  | Some r -> Alcotest.(check bool) "remaining sane" true (r > 0.0 && r <= 60.0)
  | None -> Alcotest.fail "bounded budget must report remaining"

let test_pool_budget_cancels () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      (* an expired budget aborts the region before completing it *)
      let raised =
        try
          ignore
            (Parallel.Pool.init pool ~budget:(Parallel.Budget.of_timeout_ms 0) 1000 (fun i ->
                 Unix.sleepf 0.001;
                 i));
          false
        with Parallel.Budget.Deadline_exceeded -> true
      in
      Alcotest.(check bool) "expired budget raises from pool" true raised;
      (* an unlimited budget changes nothing *)
      let a = Parallel.Pool.init pool ~budget:Parallel.Budget.unlimited 64 (fun i -> i * i) in
      let b = Parallel.Pool.init pool 64 (fun i -> i * i) in
      Alcotest.(check bool) "budget does not change results" true (a = b))

(* --- Deadlines through the service --- *)

let test_deadline_exceeded_within_2x () =
  let t = Server.Service.create () in
  (* the injected compute delay (300 ms) overshoots the request budget
     (200 ms); the budget check directly after the fault must fire *)
  Server.Service.set_faults t (faults "compute=delay:300");
  let t0 = Unix.gettimeofday () in
  let response =
    dispatch t "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\",\"timeout_ms\":200}"
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check (option string)) "deadline_exceeded" (Some "deadline_exceeded")
    (response_code response);
  Alcotest.(check bool)
    (Printf.sprintf "answered within 2x budget (%.0f ms)" (elapsed *. 1000.0))
    true (elapsed < 0.400);
  (* the failure is counted and the daemon still works *)
  Server.Service.set_faults t Server.Faults.none;
  ignore (expect_ok t "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\",\"timeout_ms\":30000}");
  let stats = expect_ok t "{\"v\":1,\"op\":\"stats\"}" in
  Alcotest.(check int) "deadline counter" 1
    Server.Json.(to_int (member "deadline_exceeded" (member "counters" stats)))

let test_default_timeout_applies () =
  let limits =
    { Server.Service.default_limits with Server.Service.default_timeout_ms = Some 100 }
  in
  let t = Server.Service.create ~limits () in
  Server.Service.set_faults t (faults "compute=delay:200");
  let response = dispatch t "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}" in
  Alcotest.(check (option string)) "server default budget enforced" (Some "deadline_exceeded")
    (response_code response)

(* --- Protocol error paths --- *)

let test_protocol_error_paths () =
  let t = Server.Service.create () in
  expect_code t "parse_error" "{not json";
  expect_code t "parse_error" "{\"v\":1,\"op\":";
  expect_code t "unsupported_version" "{\"op\":\"health\"}";
  expect_code t "unsupported_version" "{\"v\":99,\"op\":\"health\"}";
  expect_code t "invalid_request" "{\"v\":1,\"op\":\"teleport\"}";
  expect_code t "bad_request" "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"nope\"}";
  expect_code t "bad_request" "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\",\"timeout_ms\":-5}";
  expect_code t "bad_request" "{\"v\":1,\"op\":\"batch\",\"jobs\":[]}";
  (* batch size limit *)
  let limits = { Server.Service.default_limits with Server.Service.max_batch_jobs = 2 } in
  let t2 = Server.Service.create ~limits () in
  let job = "{\"op\":\"analyze\",\"circuit\":\"c17\"}" in
  expect_code t2 "invalid_request"
    (Printf.sprintf "{\"v\":1,\"op\":\"batch\",\"jobs\":[%s,%s,%s]}" job job job);
  ignore (expect_ok t2 (Printf.sprintf "{\"v\":1,\"op\":\"batch\",\"jobs\":[%s,%s]}" job job))

let test_gate_limit () =
  let limits = { Server.Service.default_limits with Server.Service.max_gates = 3 } in
  let t = Server.Service.create ~limits () in
  expect_code t "invalid_request" "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}";
  (* health is not a compute path and keeps working *)
  ignore (expect_ok t "{\"v\":1,\"op\":\"health\"}")

(* --- Positioned .bench errors --- *)

let bench_error text =
  match Circuit.Bench_io.parse_result ~name:"t" text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_bench_positioned_errors () =
  let e = bench_error "INPUT(a)\nz = FOO(a)\nOUTPUT(z)\n" in
  Alcotest.(check (option int)) "unknown gate line" (Some 2) e.Circuit.Bench_io.line;
  let e = bench_error "INPUT(a)\nz = NOT(a, a)\nOUTPUT(z)\n" in
  Alcotest.(check (option int)) "arity mismatch line" (Some 2) e.Circuit.Bench_io.line;
  let e = bench_error "INPUT(a)\nz = NOT(a)\nz = NOT(a)\nOUTPUT(z)\n" in
  Alcotest.(check (option int)) "duplicate net line" (Some 3) e.Circuit.Bench_io.line;
  let e = bench_error "INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)\n" in
  Alcotest.(check (option int)) "dangling fanin line" (Some 2) e.Circuit.Bench_io.line;
  Alcotest.(check bool) "dangling fanin names signal" true
    (let m = e.Circuit.Bench_io.message in
     String.length m >= 5);
  let e = bench_error "INPUT(a)\nOUTPUT(ghost)\n" in
  Alcotest.(check (option int)) "dangling output line" (Some 2) e.Circuit.Bench_io.line;
  let e = bench_error "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(x)\n" in
  Alcotest.(check bool) "cycle is positioned" true (e.Circuit.Bench_io.line <> None);
  (* the exception-style entry point folds the position into the message *)
  Alcotest.(check bool) "parse_string raises positioned Failure" true
    (try
       ignore (Circuit.Bench_io.parse_string ~name:"t" "INPUT(a)\nz = FOO(a)\n");
       false
     with Failure m -> String.length m > 12 && String.sub m 0 12 = ".bench line ");
  (* well-formed input still parses *)
  match Circuit.Bench_io.parse_result ~name:"t" "INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n" with
  | Ok net -> Alcotest.(check int) "good input parses" 1 (Circuit.Netlist.n_gates net)
  | Error e -> Alcotest.fail e.Circuit.Bench_io.message

let test_bench_error_maps_to_invalid_request () =
  let t = Server.Service.create () in
  let response =
    dispatch t
      "{\"v\":1,\"op\":\"analyze\",\"circuit\":{\"bench\":\"INPUT(a)\\nz = FOO(a)\\nOUTPUT(z)\"}}"
  in
  Alcotest.(check (option string)) "invalid_request" (Some "invalid_request")
    (response_code response);
  Alcotest.(check (option int)) "line detail on the wire" (Some 2)
    (Server.Protocol.error_detail_int response "line")

(* --- Admission control, shedding and degraded mode --- *)

let test_shed_and_degraded_mode () =
  let t = Server.Service.create () in
  let analyze = "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}" in
  ignore (expect_ok t analyze);
  (* every admission from here on sheds *)
  Server.Service.set_faults t (faults "admission=shed");
  (* degraded mode: the cached answer is still served... *)
  let r = expect_ok t analyze in
  Alcotest.(check bool) "cache hit bypasses admission" true
    (Server.Json.to_bool (Server.Json.member "cached" r));
  (* ...as are health and stats... *)
  ignore (expect_ok t "{\"v\":1,\"op\":\"health\"}");
  ignore (expect_ok t "{\"v\":1,\"op\":\"stats\"}");
  (* ...but new compute is refused with a retry hint *)
  let shed = dispatch t "{\"v\":1,\"op\":\"ivc_search\",\"circuit\":\"c17\",\"seed\":3}" in
  Alcotest.(check (option string)) "overloaded" (Some "overloaded") (response_code shed);
  Alcotest.(check (option int)) "retry_after_ms hint" (Some 250)
    (Server.Protocol.error_detail_int shed "retry_after_ms");
  let stats = expect_ok t "{\"v\":1,\"op\":\"stats\"}" in
  Alcotest.(check bool) "shed counted" true
    (Server.Json.(to_int (member "shed" (member "counters" stats))) >= 1);
  Alcotest.(check int) "nothing left pending" 0 (Server.Service.pending t)

let test_retry_defeats_transient_shed () =
  let t = Server.Service.create () in
  Server.Service.set_faults t (faults "admission=shed@2");
  let policy = { Server.Retry.retries = 5; base_ms = 1; cap_ms = 2000 } in
  let rng = Physics.Rng.create ~seed:11 in
  let line = "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}" in
  let attempts = ref 0 in
  (* the client loop: retry retryable codes with backoff, honoring the
     server's retry_after hint *)
  let rec go attempt =
    incr attempts;
    let response = dispatch t line in
    match Server.Protocol.response_result response with
    | Ok r -> r
    | Error (code, m) ->
      if not (Server.Protocol.retryable_code_string code) then Alcotest.fail (code ^ ": " ^ m);
      if attempt >= policy.Server.Retry.retries then Alcotest.fail "retries exhausted";
      let retry_after_ms = Server.Protocol.error_detail_int response "retry_after_ms" in
      let ms = Server.Retry.backoff_ms policy ~attempt ?retry_after_ms ~rng () in
      Alcotest.(check bool) "hint honored" true (ms >= 125);
      (* don't actually sleep 125+ ms per attempt in the test suite *)
      Unix.sleepf 0.001;
      go (attempt + 1)
  in
  let r = go 0 in
  Alcotest.(check int) "two sheds then success" 3 !attempts;
  Alcotest.(check bool) "fresh compute after faults drained" false
    (Server.Json.to_bool (Server.Json.member "cached" r))

(* --- Injected worker failures --- *)

let test_compute_fail_is_structured_and_transient () =
  let t = Server.Service.create () in
  Server.Service.set_faults t (faults "compute=fail@1");
  let line = "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}" in
  let first = dispatch t line in
  Alcotest.(check (option string)) "injected failure is structured" (Some "internal_error")
    (response_code first);
  (* nothing was cached for the failed attempt; the retry recomputes and
     matches a direct platform run bit-exactly *)
  let r = expect_ok t line in
  Alcotest.(check bool) "retry recomputes" false
    (Server.Json.to_bool (Server.Json.member "cached" r));
  let cfg = Server.Protocol.platform_config Server.Protocol.default_flow_spec in
  let direct =
    Flow.Platform.analyze cfg
      (Flow.Platform.prepare cfg (Circuit.Generators.c17 ()))
      ~standby:Aging.Circuit_aging.Standby_all_stressed
  in
  let served = Server.Protocol.analysis_of_json (Server.Json.member "analysis" r) in
  Alcotest.(check bool) "post-fault result bit-exact" true (served = direct)

let test_batch_job_failures_are_isolated () =
  let t = Server.Service.create () in
  Server.Service.set_faults t (faults "compute=fail@1");
  let line =
    "{\"v\":1,\"op\":\"batch\",\"jobs\":[{\"op\":\"analyze\",\"circuit\":\"c17\"},{\"op\":\"analyze\",\"circuit\":\"c17\",\"standby\":\"best\"}]}"
  in
  let result = expect_ok t line in
  match Server.Json.member "results" result with
  | Server.Json.List results ->
    let kinds =
      List.map (fun r -> Server.Json.to_string_exn (Server.Json.member "kind" r)) results
    in
    Alcotest.(check int) "both jobs answered" 2 (List.length results);
    Alcotest.(check bool) "exactly one injected failure" true
      (List.length (List.filter (fun k -> k = "error") kinds) = 1);
    Alcotest.(check bool) "the sibling survived" true (List.mem "analysis" kinds)
  | _ -> Alcotest.fail "expected a results list"

(* --- Faults plan parsing --- *)

let test_faults_spec_parsing () =
  List.iter
    (fun spec ->
      Alcotest.(check bool) ("accepts " ^ spec) true
        (match Server.Faults.parse spec with Ok _ -> true | Error _ -> false))
    [
      "compute=delay:50";
      "admission=shed@2";
      "write=truncate@1,compute=fail";
      " compute = fail , write=delay:10 ";
      "";
    ];
  List.iter
    (fun spec ->
      Alcotest.(check bool) ("rejects " ^ spec) true
        (match Server.Faults.parse spec with Error _ -> true | Ok _ -> false))
    [ "compute"; "kitchen=fail"; "compute=explode"; "compute=delay:xx"; "compute=fail@0" ];
  let f = faults "compute=fail@2" in
  Alcotest.(check int) "armed twice" 2 (List.length (Server.Faults.fire f ~site:"compute") + List.length (Server.Faults.fire f ~site:"compute"));
  Alcotest.(check (list string)) "then disarmed" []
    (List.map Server.Faults.action_to_string (Server.Faults.fire f ~site:"compute"));
  Alcotest.(check (list string)) "other sites unaffected" []
    (List.map Server.Faults.action_to_string (Server.Faults.fire f ~site:"write"))

(* --- Byte-bounded cache --- *)

let test_cache_byte_budget () =
  let c = Server.Cache.create ~capacity:100 ~max_bytes:100 ~weight:String.length () in
  Server.Cache.add c "a" (String.make 40 'a');
  Server.Cache.add c "b" (String.make 40 'b');
  Alcotest.(check int) "bytes accounted" 80 (Server.Cache.bytes_used c);
  Server.Cache.add c "c" (String.make 40 'c');
  (* 120 bytes > 100: the LRU entry "a" must go *)
  Alcotest.(check int) "evicted down to budget" 80 (Server.Cache.bytes_used c);
  Alcotest.(check (option string)) "lru evicted" None (Server.Cache.find c "a");
  Alcotest.(check bool) "recent kept" true (Server.Cache.find c "c" <> None);
  let s = Server.Cache.stats c in
  Alcotest.(check int) "eviction counted" 1 s.Server.Cache.evictions;
  Alcotest.(check (option int)) "budget reported" (Some 100) s.Server.Cache.max_bytes;
  Alcotest.(check int) "bytes reported" 80 s.Server.Cache.bytes_used;
  (* one entry heavier than the whole budget still caches (approximate
     budget, never an empty cache) *)
  Server.Cache.add c "huge" (String.make 300 'h');
  Alcotest.(check int) "kept the oversized entry" 1 (Server.Cache.length c);
  Alcotest.(check int) "its weight is visible" 300 (Server.Cache.bytes_used c);
  (* replacing a value re-weighs it *)
  Server.Cache.clear c;
  Server.Cache.add c "k" (String.make 10 'x');
  Server.Cache.add c "k" (String.make 90 'x');
  Alcotest.(check int) "replacement re-weighed" 90 (Server.Cache.bytes_used c)

let test_service_reports_cache_bytes () =
  let t = Server.Service.create () in
  ignore (expect_ok t "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}");
  let stats = expect_ok t "{\"v\":1,\"op\":\"stats\"}" in
  let results = Server.Json.(member "results" (member "cache" stats)) in
  Alcotest.(check bool) "bytes_used > 0 after one result" true
    (Server.Json.(to_int (member "bytes_used" results)) > 0);
  Alcotest.(check bool) "max_bytes advertised" true
    (Server.Json.(to_int (member "max_bytes" results)) > 0)

(* --- Retry schedule --- *)

let test_backoff_deterministic_and_bounded () =
  let policy = { Server.Retry.retries = 6; base_ms = 50; cap_ms = 2000 } in
  let schedule seed =
    let rng = Physics.Rng.create ~seed in
    List.init 6 (fun attempt -> Server.Retry.backoff_ms policy ~attempt ~rng ())
  in
  Alcotest.(check (list int)) "same seed, same schedule" (schedule 42) (schedule 42);
  Alcotest.(check bool) "different seeds diverge" true (schedule 42 <> schedule 43);
  List.iteri
    (fun attempt ms ->
      let target = min policy.Server.Retry.cap_ms (policy.Server.Retry.base_ms * (1 lsl attempt)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [target/2, target]" attempt)
        true
        (ms >= target / 2 && ms <= target))
    (schedule 7);
  (* the server's hint raises the floor *)
  let rng = Physics.Rng.create ~seed:1 in
  let ms = Server.Retry.backoff_ms policy ~attempt:0 ~retry_after_ms:800 ~rng () in
  Alcotest.(check bool) "retry_after_ms honored" true (ms >= 400 && ms <= 800);
  (* but never past the cap *)
  let ms = Server.Retry.backoff_ms policy ~attempt:0 ~retry_after_ms:60000 ~rng () in
  Alcotest.(check bool) "hint capped" true (ms <= policy.Server.Retry.cap_ms)

(* --- Socket-level chaos --- *)

let with_server ?limits ?faults:fault_plan f =
  let t = Server.Service.create ?limits () in
  (match fault_plan with Some p -> Server.Service.set_faults t (faults p) | None -> ());
  let path = Filename.temp_file "nbti_chaos" ".sock" in
  Sys.remove path;
  let ready = Mutex.create () in
  let ready_cond = Condition.create () in
  let is_ready = ref false in
  let on_ready () =
    Mutex.lock ready;
    is_ready := true;
    Condition.signal ready_cond;
    Mutex.unlock ready
  in
  let server_thread =
    Thread.create (fun () -> Server.Service.serve t (Server.Service.Unix_socket path) ~on_ready ()) ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait ready_cond ready
  done;
  Mutex.unlock ready;
  Fun.protect
    ~finally:(fun () ->
      Server.Service.stop t;
      Thread.join server_thread)
    (fun () -> f t path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let test_socket_oversized_line () =
  let limits = { Server.Service.default_limits with Server.Service.max_line_bytes = 1024 } in
  with_server ~limits (fun _t path ->
      let fd, ic, oc = connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send oc (String.make 5000 'x');
          let response = Server.Json.of_string (input_line ic) in
          Alcotest.(check (option string)) "oversized line refused" (Some "invalid_request")
            (response_code response);
          Alcotest.(check (option int)) "limit advertised" (Some 1024)
            (Server.Protocol.error_detail_int response "max_line_bytes");
          (* framing survived: the connection still answers *)
          send oc "{\"v\":1,\"op\":\"health\"}";
          match Server.Protocol.response_result (Server.Json.of_string (input_line ic)) with
          | Ok _ -> ()
          | Error (c, m) -> Alcotest.fail (c ^ ": " ^ m)))

let test_socket_midline_eof () =
  with_server (fun _t path ->
      let fd, ic, oc = connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* half-close: the request line ends in EOF, not newline *)
          output_string oc "{\"v\":1,\"op\":";
          flush oc;
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          let response = Server.Json.of_string (input_line ic) in
          Alcotest.(check (option string)) "mid-line EOF is a parse error" (Some "parse_error")
            (response_code response);
          Alcotest.(check bool) "then the server closes cleanly" true
            (try
               ignore (input_line ic);
               false
             with End_of_file -> true)))

let test_socket_truncated_write_then_retry () =
  with_server ~faults:"write=truncate@1" (fun _t path ->
      let line = "{\"v\":1,\"op\":\"analyze\",\"circuit\":\"c17\"}" in
      let fd, ic, oc = connect path in
      let first =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            send oc line;
            match input_line ic with
            | partial -> ( try Ok (Server.Json.of_string partial) with Server.Json.Parse_error _ -> Error partial)
            | exception End_of_file -> Error "")
      in
      (match first with
      | Ok _ -> Alcotest.fail "expected a truncated response"
      | Error partial ->
        Alcotest.(check bool) "response was cut short" true
          (String.length partial < String.length line + 400));
      (* a retrying client reconnects and asks again; the fault budget is
         spent, and the answer comes from the result cache *)
      let fd2, ic2, oc2 = connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          send oc2 line;
          match Server.Protocol.response_result (Server.Json.of_string (input_line ic2)) with
          | Ok r ->
            Alcotest.(check bool) "retry served from cache" true
              (Server.Json.to_bool (Server.Json.member "cached" r))
          | Error (c, m) -> Alcotest.fail (c ^ ": " ^ m)))

let test_socket_vanished_peer_survival () =
  with_server ~faults:"write=delay:150@1" (fun t path ->
      (* the peer sends a request and vanishes before the (delayed)
         response is written: the write must fail EPIPE-style on that
         connection only *)
      let fd, _ic, oc = connect path in
      send oc "{\"v\":1,\"op\":\"health\"}";
      Unix.close fd;
      Unix.sleepf 0.4;
      (* the daemon survived and still answers *)
      let fd2, ic2, oc2 = connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          send oc2 "{\"v\":1,\"op\":\"stats\"}";
          match Server.Protocol.response_result (Server.Json.of_string (input_line ic2)) with
          | Ok stats ->
            Alcotest.(check bool) "disconnect counted" true
              (Server.Json.(to_int (member "disconnects" (member "counters" stats))) >= 1
              || Server.Json.(to_int (member "truncated_writes" (member "counters" stats))) >= 0)
          | Error (c, m) -> Alcotest.fail (c ^ ": " ^ m));
      Alcotest.(check int) "nothing left pending" 0 (Server.Service.pending t))

let () =
  Alcotest.run "robustness"
    [
      ( "budget",
        [
          Alcotest.test_case "basics" `Quick test_budget_basics;
          Alcotest.test_case "pool cancellation" `Quick test_pool_budget_cancels;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "exceeded within 2x budget" `Quick test_deadline_exceeded_within_2x;
          Alcotest.test_case "server default timeout" `Quick test_default_timeout_applies;
        ] );
      ( "limits",
        [
          Alcotest.test_case "protocol error paths" `Quick test_protocol_error_paths;
          Alcotest.test_case "gate limit" `Quick test_gate_limit;
        ] );
      ( "bench",
        [
          Alcotest.test_case "positioned errors" `Quick test_bench_positioned_errors;
          Alcotest.test_case "maps to invalid_request" `Quick test_bench_error_maps_to_invalid_request;
        ] );
      ( "admission",
        [
          Alcotest.test_case "shed and degraded mode" `Quick test_shed_and_degraded_mode;
          Alcotest.test_case "retry defeats transient shed" `Quick test_retry_defeats_transient_shed;
        ] );
      ( "faults",
        [
          Alcotest.test_case "spec parsing" `Quick test_faults_spec_parsing;
          Alcotest.test_case "compute failure is transient" `Quick
            test_compute_fail_is_structured_and_transient;
          Alcotest.test_case "batch failures isolated" `Quick test_batch_job_failures_are_isolated;
        ] );
      ( "cache",
        [
          Alcotest.test_case "byte budget" `Quick test_cache_byte_budget;
          Alcotest.test_case "bytes in stats" `Quick test_service_reports_cache_bytes;
        ] );
      ("retry", [ Alcotest.test_case "deterministic backoff" `Quick test_backoff_deterministic_and_bounded ]);
      ( "socket chaos",
        [
          Alcotest.test_case "oversized line" `Quick test_socket_oversized_line;
          Alcotest.test_case "mid-line EOF" `Quick test_socket_midline_eof;
          Alcotest.test_case "truncated write then retry" `Quick
            test_socket_truncated_write_then_retry;
          Alcotest.test_case "vanished peer" `Quick test_socket_vanished_peer_survival;
        ] );
    ]
