(* Equivalence suite for the compiled struct-of-arrays netlist core:
   every compiled hot path must be bit-identical to its boxed-DAG
   reference (the `_boxed` oracles kept for exactly this purpose) — on
   logic evaluation (scalar and 64-lane packed), Monte-Carlo signal
   probabilities and activity, fresh/aged STA, the process-variation
   study and the MLV leakage search — across the ISCAS85 unit-test
   suite plus a >= 10^4-gate generated DAG, at 1, 2 and 4 domains. *)

let with_pool = Parallel.Pool.with_pool

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let check_floats_exact name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) (Printf.sprintf "%s [%d]" name i) true (bits_equal x b.(i)))
    a

(* The circuits under test: the fast ISCAS85 subset plus a generated DAG
   an order of magnitude past the largest structural bench, to exercise
   the arena's CSR layout well beyond hand-sized circuits. *)
let big_profile =
  {
    Circuit.Generators.name = "dag10k";
    n_pi = 64;
    n_po = 32;
    n_gates = 10_000;
    seed = 42;
  }

let big = lazy (Circuit.Generators.random_dag big_profile)

let small = lazy (Circuit.Generators.small_suite ())
let all_nets = lazy (Lazy.force small @ [ Lazy.force big ])

let net_name (net : Circuit.Netlist.t) = net.Circuit.Netlist.name

(* --- logic evaluation: scalar and packed --- *)

let random_inputs rng n = Array.init n (fun _ -> Physics.Rng.bool rng)

let test_eval_scalar () =
  let rng = Physics.Rng.create ~seed:17 in
  List.iter
    (fun net ->
      let a = Compiled.Arena.get net in
      let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
      let vals = Array.make a.Compiled.Arena.n_nodes 0 in
      let idxs = Array.make a.Compiled.Arena.n_nodes 0 in
      for trial = 1 to 16 do
        let inputs = random_inputs rng n_pi in
        let expect = Logic.Eval.eval net ~inputs in
        Compiled.Arena.eval_bool a ~inputs ~vals ~idxs;
        Array.iteri
          (fun id v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s trial %d node %d" (net_name net) trial id)
              v
              (vals.(id) = 1))
          expect
      done)
    (Lazy.force all_nets)

let split_word w =
  ( Int64.to_int (Int64.logand w 0xFFFFFFFFL),
    Int64.to_int (Int64.shift_right_logical w 32) )

let join_word lo hi =
  Int64.logor (Int64.of_int (lo land 0xFFFFFFFF)) (Int64.shift_left (Int64.of_int hi) 32)

let test_eval_packed () =
  let rng = Physics.Rng.create ~seed:23 in
  List.iter
    (fun net ->
      let a = Compiled.Arena.get net in
      let n = a.Compiled.Arena.n_nodes in
      let words =
        Array.init (Array.length a.Compiled.Arena.pis) (fun _ -> Physics.Rng.int64 rng)
      in
      let expect = Logic.Eval.eval_packed net ~inputs:words in
      let lo = Array.make n 0 and hi = Array.make n 0 in
      Array.iteri
        (fun k id ->
          let l, h = split_word words.(k) in
          lo.(id) <- l;
          hi.(id) <- h)
        a.Compiled.Arena.pis;
      Compiled.Arena.eval_packed a ~lo ~hi;
      for id = 0 to n - 1 do
        Alcotest.(check int64)
          (Printf.sprintf "%s packed node %d" (net_name net) id)
          expect.(id)
          (join_word lo.(id) hi.(id))
      done)
    (Lazy.force all_nets)

(* --- Monte-Carlo signal probability and activity --- *)

let test_signal_prob_mc () =
  List.iter
    (fun net ->
      let input_sp = Logic.Signal_prob.uniform_inputs net 0.4 in
      let boxed =
        Logic.Signal_prob.monte_carlo_boxed net ~rng:(Physics.Rng.create ~seed:7) ~input_sp
          ~n_vectors:4096
      in
      List.iter
        (fun domains ->
          with_pool ~domains (fun pool ->
              let compiled =
                Logic.Signal_prob.monte_carlo ~pool net ~rng:(Physics.Rng.create ~seed:7)
                  ~input_sp ~n_vectors:4096
              in
              check_floats_exact
                (Printf.sprintf "%s sp @ %d domains" (net_name net) domains)
                boxed compiled))
        [ 1; 2; 4 ])
    (Lazy.force all_nets)

let test_activity_mc () =
  List.iter
    (fun net ->
      let input_sp = Logic.Signal_prob.uniform_inputs net 0.5 in
      let boxed =
        Logic.Activity.monte_carlo_boxed net ~rng:(Physics.Rng.create ~seed:9) ~input_sp
          ~n_pairs:2048
      in
      List.iter
        (fun domains ->
          with_pool ~domains (fun pool ->
              let compiled =
                Logic.Activity.monte_carlo ~pool net ~rng:(Physics.Rng.create ~seed:9)
                  ~input_sp ~n_pairs:2048
              in
              check_floats_exact
                (Printf.sprintf "%s activity @ %d domains" (net_name net) domains)
                boxed compiled))
        [ 1; 2; 4 ])
    (Lazy.force all_nets)

(* --- fresh/aged STA through the aging analysis --- *)

let check_timing_result name (a : Sta.Timing.result) (b : Sta.Timing.result) =
  check_floats_exact (name ^ " arrival") a.Sta.Timing.arrival b.Sta.Timing.arrival;
  check_floats_exact (name ^ " gate_delay") a.Sta.Timing.gate_delay b.Sta.Timing.gate_delay;
  Alcotest.(check bool) (name ^ " max_delay") true
    (bits_equal a.Sta.Timing.max_delay b.Sta.Timing.max_delay);
  Alcotest.(check (list int)) (name ^ " critical_path") a.Sta.Timing.critical_path
    b.Sta.Timing.critical_path;
  Alcotest.(check int) (name ^ " critical_output") a.Sta.Timing.critical_output
    b.Sta.Timing.critical_output

let check_analysis name (a : Aging.Circuit_aging.analysis) (b : Aging.Circuit_aging.analysis) =
  check_timing_result (name ^ " fresh") a.Aging.Circuit_aging.fresh b.Aging.Circuit_aging.fresh;
  check_timing_result (name ^ " aged") a.Aging.Circuit_aging.aged b.Aging.Circuit_aging.aged;
  Alcotest.(check bool) (name ^ " degradation") true
    (bits_equal a.Aging.Circuit_aging.degradation b.Aging.Circuit_aging.degradation);
  Alcotest.(check bool) (name ^ " max_dvth") true
    (bits_equal a.Aging.Circuit_aging.max_dvth b.Aging.Circuit_aging.max_dvth)

let standby_states net =
  let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
  [
    ("worst", Aging.Circuit_aging.Standby_all_stressed);
    ("best", Aging.Circuit_aging.Standby_all_relaxed);
    ( "vector",
      Aging.Circuit_aging.Standby_vector (Array.init n_pi (fun i -> i land 1 = 0)) );
  ]

let test_aging_analysis () =
  List.iter
    (fun net ->
      let node_sp =
        Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
      in
      let config = Aging.Circuit_aging.default_config () in
      List.iter
        (fun (sname, standby) ->
          let name = Printf.sprintf "%s/%s" (net_name net) sname in
          let boxed = Aging.Circuit_aging.analyze_boxed config net ~node_sp ~standby () in
          let compiled = Aging.Circuit_aging.analyze config net ~node_sp ~standby () in
          check_analysis name boxed compiled)
        (standby_states net))
    (Lazy.force all_nets)

let test_aging_analysis_pbti_and_load () =
  (* PBTI (NMOS aging) on, plus a non-default primary-output load:
     exercises the NMOS shape path and the po_load-keyed timing memo. *)
  let net = Circuit.Generators.by_name "c432" in
  let node_sp =
    Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
  in
  let config = Aging.Circuit_aging.default_config ~pbti_scale:0.5 () in
  let standby = Aging.Circuit_aging.Standby_all_relaxed in
  let boxed =
    Aging.Circuit_aging.analyze_boxed config net ~po_load:5e-15 ~node_sp ~standby ()
  in
  let compiled =
    Aging.Circuit_aging.analyze config net ~po_load:5e-15 ~node_sp ~standby ()
  in
  check_analysis "c432 pbti+load" boxed compiled

(* --- process-variation Monte-Carlo --- *)

let check_study name (a : Variation.Process_var.study) (b : Variation.Process_var.study) =
  Alcotest.(check int) (name ^ " samples") (Array.length a.Variation.Process_var.samples)
    (Array.length b.Variation.Process_var.samples);
  Array.iteri
    (fun i (s : Variation.Process_var.sample) ->
      let t = b.Variation.Process_var.samples.(i) in
      Alcotest.(check bool) (Printf.sprintf "%s fresh %d" name i) true
        (bits_equal s.Variation.Process_var.fresh_delay t.Variation.Process_var.fresh_delay);
      Alcotest.(check bool) (Printf.sprintf "%s aged %d" name i) true
        (bits_equal s.Variation.Process_var.aged_delay t.Variation.Process_var.aged_delay))
    a.Variation.Process_var.samples;
  Alcotest.(check bool) (name ^ " summaries") true
    (a.Variation.Process_var.fresh = b.Variation.Process_var.fresh
    && a.Variation.Process_var.aged = b.Variation.Process_var.aged
    && a.Variation.Process_var.fresh_3sigma = b.Variation.Process_var.fresh_3sigma
    && a.Variation.Process_var.aged_3sigma = b.Variation.Process_var.aged_3sigma)

let test_process_var () =
  List.iter
    (fun net ->
      let node_sp =
        Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)
      in
      let n_samples = if Circuit.Netlist.n_gates net > 1000 then 6 else 24 in
      let config =
        Variation.Process_var.default_config ~n_samples (Aging.Circuit_aging.default_config ())
      in
      let standby = Aging.Circuit_aging.Standby_all_stressed in
      let boxed =
        Variation.Process_var.run_boxed config net ~node_sp ~standby
          ~rng:(Physics.Rng.create ~seed:3)
      in
      List.iter
        (fun domains ->
          with_pool ~domains (fun pool ->
              let compiled =
                Variation.Process_var.run ~pool config net ~node_sp ~standby
                  ~rng:(Physics.Rng.create ~seed:3)
              in
              check_study
                (Printf.sprintf "%s @ %d domains" (net_name net) domains)
                boxed compiled))
        [ 1; 2; 4 ])
    (Lazy.force all_nets)

(* --- MLV leakage search --- *)

let test_mlv_exhaustive_vs_evaluate () =
  (* The compiled exhaustive sweep must land on the same vector and the
     same leakage bits as a brute-force fold over the boxed evaluator. *)
  let net = Circuit.Generators.by_name "c17" in
  let tables = Leakage.Circuit_leakage.build_tables Device.Tech.ptm_90nm net ~temp_k:400.0 in
  let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
  let best = ref None in
  for v = 0 to (1 lsl n_pi) - 1 do
    let c = Ivc.Mlv.evaluate tables net (Logic.Eval.input_vector_of_int net v) in
    match !best with
    | Some (b : Ivc.Mlv.candidate) when b.Ivc.Mlv.leakage <= c.Ivc.Mlv.leakage -> ()
    | _ -> best := Some c
  done;
  let brute = Option.get !best in
  List.iter
    (fun domains ->
      with_pool ~domains (fun par ->
          let got = Ivc.Mlv.exhaustive ~par tables net in
          Alcotest.(check string)
            (Printf.sprintf "vector @ %d domains" domains)
            (Ivc.Mlv.vector_key brute.Ivc.Mlv.vector)
            (Ivc.Mlv.vector_key got.Ivc.Mlv.vector);
          Alcotest.(check bool) "leakage bits" true
            (bits_equal brute.Ivc.Mlv.leakage got.Ivc.Mlv.leakage)))
    [ 1; 2; 4 ]

let test_mlv_candidates_match_boxed_evaluate () =
  (* Every candidate a compiled search reports must re-evaluate to the
     same leakage bits through the boxed [evaluate] — the compiled
     leakage sum is the boxed sum, term for term. *)
  List.iter
    (fun net ->
      let tables =
        Leakage.Circuit_leakage.build_tables Device.Tech.ptm_90nm net ~temp_k:400.0
      in
      let set, _stats =
        Ivc.Mlv.probability_based tables net ~rng:(Physics.Rng.create ~seed:4) ~pool:16
          ~max_rounds:4 ()
      in
      Alcotest.(check bool) (net_name net ^ " found candidates") true (set <> []);
      List.iter
        (fun (c : Ivc.Mlv.candidate) ->
          let again = Ivc.Mlv.evaluate tables net c.Ivc.Mlv.vector in
          Alcotest.(check bool)
            (Printf.sprintf "%s candidate leakage bits" (net_name net))
            true
            (bits_equal c.Ivc.Mlv.leakage again.Ivc.Mlv.leakage))
        set)
    (Lazy.force small)

let () =
  Alcotest.run "compiled"
    [
      ( "logic",
        [
          Alcotest.test_case "scalar eval = boxed eval" `Quick test_eval_scalar;
          Alcotest.test_case "packed eval = boxed packed eval" `Quick test_eval_packed;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "signal-prob MC = boxed, 1/2/4 domains" `Quick test_signal_prob_mc;
          Alcotest.test_case "activity MC = boxed, 1/2/4 domains" `Quick test_activity_mc;
        ] );
      ( "sta",
        [
          Alcotest.test_case "aging analysis = boxed" `Quick test_aging_analysis;
          Alcotest.test_case "pbti + po_load analysis = boxed" `Quick
            test_aging_analysis_pbti_and_load;
        ] );
      ( "variation",
        [ Alcotest.test_case "process-var study = boxed, 1/2/4 domains" `Quick test_process_var ] );
      ( "mlv",
        [
          Alcotest.test_case "exhaustive = brute-force boxed" `Quick
            test_mlv_exhaustive_vs_evaluate;
          Alcotest.test_case "search candidates re-evaluate bit-equal" `Quick
            test_mlv_candidates_match_boxed_evaluate;
        ] );
    ]
