(* Tests for the observability layer: Metrics bucket boundaries and
   quantile clamping (including under concurrent domains), the Registry's
   Prometheus text exposition (escaping, family grouping, histogram
   series), Trace span nesting / capacity / Chrome export, and Log level
   filtering / JSONL shape. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %S in output" what needle)
    true (contains haystack needle)

(* --- Metrics: histogram bucket boundaries --- *)

let bucket_counts m endpoint =
  let s = List.find (fun s -> s.Server.Metrics.endpoint = endpoint) (Server.Metrics.snapshot m) in
  (s, s.Server.Metrics.histogram.Server.Metrics.counts)

let test_bucket_boundaries () =
  let m = Server.Metrics.create () in
  (* Bucket upper bounds are 1e-6 * sqrt(10)^i, inclusive: exactly 1 us
     lands in bucket 0, just above it in bucket 1, and anything past
     100 s in the overflow bucket. *)
  Server.Metrics.record m ~endpoint:"e" ~ok:true ~elapsed_s:1e-6;
  Server.Metrics.record m ~endpoint:"e" ~ok:true ~elapsed_s:1.0001e-6;
  Server.Metrics.record m ~endpoint:"e" ~ok:true ~elapsed_s:150.0;
  let s, counts = bucket_counts m "e" in
  Alcotest.(check int) "bucket 0 holds the exact bound" 1 counts.(0);
  Alcotest.(check int) "bucket 1 holds just-above" 1 counts.(1);
  Alcotest.(check int) "overflow bucket" 1 counts.(Array.length counts - 1);
  Alcotest.(check int) "18 buckets (17 bounds + overflow)" 18 (Array.length counts);
  Alcotest.(check int) "requests" 3 s.Server.Metrics.requests;
  (* Negative elapsed is clamped to 0 and lands in bucket 0. *)
  Server.Metrics.record m ~endpoint:"neg" ~ok:true ~elapsed_s:(-1.0);
  let s', counts' = bucket_counts m "neg" in
  Alcotest.(check int) "negative clamps to bucket 0" 1 counts'.(0);
  Alcotest.(check (float 0.0)) "negative clamps min to 0" 0.0 s'.Server.Metrics.min_s

let test_quantile_clamping () =
  let m = Server.Metrics.create () in
  (* One 2 ms sample falls in the 3.16 ms bucket: without clamping the
     p50 estimate would exceed the slowest observation. *)
  Server.Metrics.record m ~endpoint:"one" ~ok:true ~elapsed_s:0.002;
  let s, _ = bucket_counts m "one" in
  Alcotest.(check (float 1e-12)) "single sample: p50 = the sample" 0.002
    (Server.Metrics.quantile_s s 0.5);
  let m2 = Server.Metrics.create () in
  Server.Metrics.record m2 ~endpoint:"two" ~ok:true ~elapsed_s:0.0005;
  Server.Metrics.record m2 ~endpoint:"two" ~ok:true ~elapsed_s:0.002;
  let s2, _ = bucket_counts m2 "two" in
  List.iter
    (fun q ->
      let v = Server.Metrics.quantile_s s2 q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f >= min" q)
        true
        (v >= s2.Server.Metrics.min_s);
      Alcotest.(check bool) (Printf.sprintf "q=%.2f <= max" q) true (v <= s2.Server.Metrics.max_s))
    [ 0.01; 0.5; 0.9; 0.99 ];
  let empty = Server.Metrics.create () in
  Server.Metrics.record empty ~endpoint:"z" ~ok:true ~elapsed_s:0.001;
  let sz, _ = bucket_counts empty "z" in
  Alcotest.(check bool) "p99 bounded by max" true
    (Server.Metrics.quantile_s sz 0.99 <= sz.Server.Metrics.max_s)

let test_concurrent_record () =
  let m = Server.Metrics.create () in
  let per_domain = 1000 in
  let worker () =
    for i = 1 to per_domain do
      Server.Metrics.record m ~endpoint:"hot" ~ok:(i mod 10 <> 0)
        ~elapsed_s:(1e-6 *. float_of_int i);
      Server.Metrics.incr_counter m "events"
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let s, counts = bucket_counts m "hot" in
  Alcotest.(check int) "no lost requests" (4 * per_domain) s.Server.Metrics.requests;
  Alcotest.(check int) "no lost errors" (4 * per_domain / 10) s.Server.Metrics.errors;
  Alcotest.(check int) "no lost counter increments" (4 * per_domain)
    (Server.Metrics.counter m "events");
  Alcotest.(check int) "histogram mass = requests" (4 * per_domain)
    (Array.fold_left ( + ) 0 counts)

(* --- Registry: Prometheus exposition --- *)

let test_prometheus_escaping () =
  let r = Obs.Registry.create () in
  Obs.Registry.register r (fun () ->
      [
        {
          Obs.Registry.name = "weird-name.total";
          help = "a\\b\nhelp";
          labels = [ ("path", "a\\b\"c\nd") ];
          value = Obs.Registry.Counter 3.0;
        };
      ]);
  let text = Obs.Registry.to_prometheus r in
  check_contains "sanitized family" text "weird_name_total";
  check_contains "escaped help" text "# HELP weird_name_total a\\\\b\\nhelp";
  check_contains "escaped label" text "{path=\"a\\\\b\\\"c\\nd\"} 3";
  Alcotest.(check string) "sanitize_name" "weird_name_total"
    (Obs.Registry.sanitize_name "weird-name.total");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Obs.Registry.sanitize_name "9lives");
  Alcotest.(check string) "escape_label_value" "a\\\\b\\\"c\\nd"
    (Obs.Registry.escape_label_value "a\\b\"c\nd")

let test_prometheus_histogram_and_grouping () =
  let r = Obs.Registry.create () in
  (* Two collectors interleave families: the exposition must regroup so
     each family's lines are consecutive with one HELP/TYPE header. *)
  let counter label v =
    {
      Obs.Registry.name = "nbti_requests_total";
      help = "Requests.";
      labels = [ ("endpoint", label) ];
      value = Obs.Registry.Counter v;
    }
  in
  Obs.Registry.register r (fun () ->
      [
        counter "a" 1.0;
        {
          Obs.Registry.name = "nbti_latency_seconds";
          help = "Latency.";
          labels = [];
          value =
            Obs.Registry.Histogram
              { upper_bounds = [| 0.1; 1.0 |]; counts = [| 1; 2; 3 |]; sum = 4.5; count = 6 };
        };
      ]);
  Obs.Registry.register r (fun () -> [ counter "b" 2.0 ]);
  let text = Obs.Registry.to_prometheus r in
  check_contains "cumulative first bucket" text "nbti_latency_seconds_bucket{le=\"0.1\"} 1";
  check_contains "cumulative second bucket" text "nbti_latency_seconds_bucket{le=\"1\"} 3";
  check_contains "+Inf bucket = count" text "nbti_latency_seconds_bucket{le=\"+Inf\"} 6";
  check_contains "sum" text "nbti_latency_seconds_sum 4.5";
  check_contains "count" text "nbti_latency_seconds_count 6";
  check_contains "histogram TYPE" text "# TYPE nbti_latency_seconds histogram";
  (* One header per family, and both endpoint samples adjacent. *)
  let lines = String.split_on_char '\n' text in
  let type_lines = List.filter (contains "# TYPE nbti_requests_total") lines in
  Alcotest.(check int) "one TYPE line for the family" 1 (List.length type_lines);
  let family_lines =
    List.filter (fun l -> contains l "nbti_requests_total{" ) lines
  in
  Alcotest.(check int) "both samples rendered" 2 (List.length family_lines);
  let rec adjacent = function
    | a :: b :: _ when contains a "nbti_requests_total{endpoint=\"a\"}" ->
      contains b "nbti_requests_total{endpoint=\"b\"}"
    | _ :: rest -> adjacent rest
    | [] -> false
  in
  Alcotest.(check bool) "family lines consecutive" true (adjacent lines)

let test_prometheus_roundtrip_from_metrics () =
  let m = Server.Metrics.create () in
  Server.Metrics.record m ~endpoint:"analyze" ~ok:true ~elapsed_s:0.01;
  Server.Metrics.record m ~endpoint:"analyze" ~ok:false ~elapsed_s:0.02;
  Server.Metrics.incr_counter m "shed";
  let r = Obs.Registry.create () in
  Obs.Registry.register r (fun () -> Server.Metrics.registry_samples m);
  Obs.Registry.register_gauge r ~name:"nbti_pending_requests" (fun () -> 5.0);
  let text = Obs.Registry.to_prometheus r in
  check_contains "requests family" text "nbti_requests_total{endpoint=\"analyze\"} 2";
  check_contains "errors family" text "nbti_request_errors_total{endpoint=\"analyze\"} 1";
  check_contains "events family" text "nbti_events_total{event=\"shed\"} 1";
  check_contains "latency count" text
    "nbti_request_latency_seconds_count{endpoint=\"analyze\"} 2";
  check_contains "latency +Inf" text
    "nbti_request_latency_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 2";
  check_contains "gauge" text "nbti_pending_requests 5";
  (* A raising collector contributes nothing and does not break the scrape. *)
  Obs.Registry.register r (fun () -> failwith "scrape bomb");
  let text' = Obs.Registry.to_prometheus r in
  check_contains "scrape survives a raising collector" text' "nbti_pending_requests 5"

(* --- Trace --- *)

let with_collector ?capacity f =
  let c = Obs.Trace.create ?capacity () in
  Obs.Trace.install c;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () -> f c)

let test_trace_nesting () =
  with_collector @@ fun c ->
  Obs.Ctx.with_id "req-42" (fun () ->
      Obs.Trace.with_span ~cat:"flow" "outer" (fun () ->
          Obs.Trace.with_span "inner" (fun () -> ())));
  match Obs.Trace.spans c with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner path" "outer;inner" inner.Obs.Trace.path;
    Alcotest.(check string) "outer path" "outer" outer.Obs.Trace.path;
    Alcotest.(check string) "category" "flow" outer.Obs.Trace.cat;
    Alcotest.(check (option string)) "inner cid" (Some "req-42") inner.Obs.Trace.cid;
    Alcotest.(check (option string)) "outer cid" (Some "req-42") outer.Obs.Trace.cid;
    Alcotest.(check bool) "ok" true (inner.Obs.Trace.ok && outer.Obs.Trace.ok);
    Alcotest.(check bool) "inner nested in time" true
      (inner.Obs.Trace.ts_us >= outer.Obs.Trace.ts_us
      && inner.Obs.Trace.dur_us <= outer.Obs.Trace.dur_us)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_trace_capacity_drop () =
  with_collector ~capacity:2 @@ fun c ->
  for i = 1 to 5 do
    Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans c) in
  Alcotest.(check (list string)) "newest spans retained, oldest first" [ "s4"; "s5" ] names;
  Alcotest.(check int) "dropped counts overwrites" 3 (Obs.Trace.dropped c);
  Obs.Trace.clear c;
  Alcotest.(check int) "clear empties" 0 (List.length (Obs.Trace.spans c))

let test_trace_exception_and_disabled () =
  (* Disabled: with_span is transparent — value through, no recording. *)
  Obs.Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ());
  Alcotest.(check int) "thunk still runs" 7 (Obs.Trace.with_span "ghost" (fun () -> 7));
  with_collector @@ fun c ->
  (match Obs.Trace.with_span "boom" (fun () -> failwith "kaput") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "exception re-raised" "kaput" m);
  match Obs.Trace.spans c with
  | [ s ] -> Alcotest.(check bool) "span marked not ok" false s.Obs.Trace.ok
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_trace_chrome_json () =
  let json =
    with_collector @@ fun c ->
    Obs.Ctx.with_id "cid-1" (fun () ->
        Obs.Trace.with_span ~args:[ ("gates", Obs.Fields.Int 160) ] "analyze" (fun () ->
            Obs.Trace.instant ~cat:"cache" "cache.hit"));
    Obs.Trace.to_chrome_json c
  in
  match Server.Json.of_string json with
  | Server.Json.Assoc fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Server.Json.List events) ->
      Alcotest.(check int) "span + instant" 2 (List.length events);
      let has_path =
        List.exists
          (function
            | Server.Json.Assoc ev -> (
              match List.assoc_opt "args" ev with
              | Some (Server.Json.Assoc args) ->
                List.assoc_opt "path" args = Some (Server.Json.String "analyze")
                && List.assoc_opt "cid" args = Some (Server.Json.String "cid-1")
              | _ -> false)
            | _ -> false)
          events
      in
      Alcotest.(check bool) "span event carries path and cid" true has_path
    | _ -> Alcotest.fail "traceEvents missing");
    Alcotest.(check bool) "droppedSpans present" true
      (List.mem_assoc "droppedSpans" fields)
  | _ -> Alcotest.fail "chrome export is not a JSON object"

let test_flame_summary () =
  with_collector @@ fun c ->
  Obs.Trace.with_span "a" (fun () ->
      Obs.Trace.with_span "b" (fun () -> ());
      Obs.Trace.with_span "b" (fun () -> ()));
  let flame = Obs.Trace.flame_summary c in
  check_contains "parent line" flame "a";
  check_contains "child line counts calls" flame "a;b"

(* --- Log --- *)

let with_log_capture f =
  let path = Filename.temp_file "obs_log" ".jsonl" in
  let oc = open_out path in
  Obs.Log.set_channel oc;
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_channel stderr;
      Obs.Log.set_json false;
      Obs.Log.set_level (Some Obs.Log.Warn);
      close_out_noerr oc;
      Sys.remove path)
    (fun () ->
      f ();
      flush oc;
      let ic = open_in path in
      let lines = In_channel.input_lines ic in
      close_in ic;
      lines)

let test_log_level_filtering () =
  let lines =
    with_log_capture (fun () ->
        Obs.Log.set_json true;
        Obs.Log.set_level (Some Obs.Log.Warn);
        Alcotest.(check bool) "debug filtered" false (Obs.Log.would_log Obs.Log.Debug);
        Alcotest.(check bool) "error passes" true (Obs.Log.would_log Obs.Log.Error);
        Obs.Log.debug "invisible";
        Obs.Log.info "also invisible";
        Obs.Log.warn "visible";
        Obs.Log.set_level None;
        Alcotest.(check bool) "quiet filters everything" false (Obs.Log.would_log Obs.Log.Error);
        Obs.Log.error "swallowed")
  in
  Alcotest.(check int) "only the warn record emitted" 1 (List.length lines);
  check_contains "warn record" (List.hd lines) "\"msg\":\"visible\""

let test_log_jsonl_shape () =
  let lines =
    with_log_capture (fun () ->
        Obs.Log.set_json true;
        Obs.Log.set_level (Some Obs.Log.Debug);
        Obs.Ctx.with_id "req-7" (fun () ->
            Obs.Log.info
              ~fields:[ ("gates", Obs.Fields.Int 160); ("circuit", Obs.Fields.Str "c432") ]
              "analyze done"))
  in
  match lines with
  | [ line ] -> (
    match Server.Json.of_string line with
    | Server.Json.Assoc fields ->
      Alcotest.(check bool) "ts present" true (List.mem_assoc "ts" fields);
      Alcotest.(check bool) "level=info" true
        (List.assoc_opt "level" fields = Some (Server.Json.String "info"));
      Alcotest.(check bool) "msg" true
        (List.assoc_opt "msg" fields = Some (Server.Json.String "analyze done"));
      Alcotest.(check bool) "cid" true
        (List.assoc_opt "cid" fields = Some (Server.Json.String "req-7"));
      Alcotest.(check bool) "int field" true
        (match List.assoc_opt "gates" fields with
        | Some (Server.Json.Int 160) -> true
        | Some (Server.Json.Float f) -> f = 160.0
        | _ -> false);
      Alcotest.(check bool) "string field" true
        (List.assoc_opt "circuit" fields = Some (Server.Json.String "c432"))
    | _ -> Alcotest.fail "record is not a JSON object")
  | lines -> Alcotest.failf "expected 1 record, got %d" (List.length lines)

let test_log_level_of_string () =
  (match Obs.Log.level_of_string "DEBUG" with
  | Ok (Some Obs.Log.Debug) -> ()
  | _ -> Alcotest.fail "DEBUG should parse");
  (match Obs.Log.level_of_string "quiet" with
  | Ok None -> ()
  | _ -> Alcotest.fail "quiet should parse to None");
  match Obs.Log.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus level should be rejected"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "quantile clamping" `Quick test_quantile_clamping;
          Alcotest.test_case "concurrent domains" `Quick test_concurrent_record;
        ] );
      ( "registry",
        [
          Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
          Alcotest.test_case "histogram + family grouping" `Quick
            test_prometheus_histogram_and_grouping;
          Alcotest.test_case "metrics round-trip" `Quick test_prometheus_roundtrip_from_metrics;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting, paths, cids" `Quick test_trace_nesting;
          Alcotest.test_case "ring capacity + dropped" `Quick test_trace_capacity_drop;
          Alcotest.test_case "exceptions + disabled" `Quick test_trace_exception_and_disabled;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_json;
          Alcotest.test_case "flame summary" `Quick test_flame_summary;
        ] );
      ( "log",
        [
          Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "jsonl shape" `Quick test_log_jsonl_shape;
          Alcotest.test_case "level parsing" `Quick test_log_level_of_string;
        ] );
    ]
