(* Tests for the observability layer: Metrics bucket boundaries and
   quantile clamping (including under concurrent domains), the Registry's
   Prometheus text exposition (escaping, family grouping, histogram
   series), Trace span nesting / capacity / Chrome export, and Log level
   filtering / JSONL shape. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %S in output" what needle)
    true (contains haystack needle)

(* --- Metrics: histogram bucket boundaries --- *)

let bucket_counts m endpoint =
  let s = List.find (fun s -> s.Server.Metrics.endpoint = endpoint) (Server.Metrics.snapshot m) in
  (s, s.Server.Metrics.histogram.Server.Metrics.counts)

let test_bucket_boundaries () =
  let m = Server.Metrics.create () in
  (* Bucket upper bounds are 1e-6 * sqrt(10)^i, inclusive: exactly 1 us
     lands in bucket 0, just above it in bucket 1, and anything past
     100 s in the overflow bucket. *)
  Server.Metrics.record m ~endpoint:"e" ~ok:true ~elapsed_s:1e-6;
  Server.Metrics.record m ~endpoint:"e" ~ok:true ~elapsed_s:1.0001e-6;
  Server.Metrics.record m ~endpoint:"e" ~ok:true ~elapsed_s:150.0;
  let s, counts = bucket_counts m "e" in
  Alcotest.(check int) "bucket 0 holds the exact bound" 1 counts.(0);
  Alcotest.(check int) "bucket 1 holds just-above" 1 counts.(1);
  Alcotest.(check int) "overflow bucket" 1 counts.(Array.length counts - 1);
  Alcotest.(check int) "18 buckets (17 bounds + overflow)" 18 (Array.length counts);
  Alcotest.(check int) "requests" 3 s.Server.Metrics.requests;
  (* Negative elapsed is clamped to 0 and lands in bucket 0. *)
  Server.Metrics.record m ~endpoint:"neg" ~ok:true ~elapsed_s:(-1.0);
  let s', counts' = bucket_counts m "neg" in
  Alcotest.(check int) "negative clamps to bucket 0" 1 counts'.(0);
  Alcotest.(check (float 0.0)) "negative clamps min to 0" 0.0 s'.Server.Metrics.min_s

let test_quantile_clamping () =
  let m = Server.Metrics.create () in
  (* One 2 ms sample falls in the 3.16 ms bucket: without clamping the
     p50 estimate would exceed the slowest observation. *)
  Server.Metrics.record m ~endpoint:"one" ~ok:true ~elapsed_s:0.002;
  let s, _ = bucket_counts m "one" in
  Alcotest.(check (float 1e-12)) "single sample: p50 = the sample" 0.002
    (Server.Metrics.quantile_s s 0.5);
  let m2 = Server.Metrics.create () in
  Server.Metrics.record m2 ~endpoint:"two" ~ok:true ~elapsed_s:0.0005;
  Server.Metrics.record m2 ~endpoint:"two" ~ok:true ~elapsed_s:0.002;
  let s2, _ = bucket_counts m2 "two" in
  List.iter
    (fun q ->
      let v = Server.Metrics.quantile_s s2 q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f >= min" q)
        true
        (v >= s2.Server.Metrics.min_s);
      Alcotest.(check bool) (Printf.sprintf "q=%.2f <= max" q) true (v <= s2.Server.Metrics.max_s))
    [ 0.01; 0.5; 0.9; 0.99 ];
  let empty = Server.Metrics.create () in
  Server.Metrics.record empty ~endpoint:"z" ~ok:true ~elapsed_s:0.001;
  let sz, _ = bucket_counts empty "z" in
  Alcotest.(check bool) "p99 bounded by max" true
    (Server.Metrics.quantile_s sz 0.99 <= sz.Server.Metrics.max_s)

let test_concurrent_record () =
  let m = Server.Metrics.create () in
  let per_domain = 1000 in
  let worker () =
    for i = 1 to per_domain do
      Server.Metrics.record m ~endpoint:"hot" ~ok:(i mod 10 <> 0)
        ~elapsed_s:(1e-6 *. float_of_int i);
      Server.Metrics.incr_counter m "events"
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let s, counts = bucket_counts m "hot" in
  Alcotest.(check int) "no lost requests" (4 * per_domain) s.Server.Metrics.requests;
  Alcotest.(check int) "no lost errors" (4 * per_domain / 10) s.Server.Metrics.errors;
  Alcotest.(check int) "no lost counter increments" (4 * per_domain)
    (Server.Metrics.counter m "events");
  Alcotest.(check int) "histogram mass = requests" (4 * per_domain)
    (Array.fold_left ( + ) 0 counts)

(* --- Registry: Prometheus exposition --- *)

let test_prometheus_escaping () =
  let r = Obs.Registry.create () in
  Obs.Registry.register r (fun () ->
      [
        {
          Obs.Registry.name = "weird-name.total";
          help = "a\\b\nhelp";
          labels = [ ("path", "a\\b\"c\nd") ];
          value = Obs.Registry.Counter 3.0;
        };
      ]);
  let text = Obs.Registry.to_prometheus r in
  check_contains "sanitized family" text "weird_name_total";
  check_contains "escaped help" text "# HELP weird_name_total a\\\\b\\nhelp";
  check_contains "escaped label" text "{path=\"a\\\\b\\\"c\\nd\"} 3";
  Alcotest.(check string) "sanitize_name" "weird_name_total"
    (Obs.Registry.sanitize_name "weird-name.total");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Obs.Registry.sanitize_name "9lives");
  Alcotest.(check string) "escape_label_value" "a\\\\b\\\"c\\nd"
    (Obs.Registry.escape_label_value "a\\b\"c\nd")

let test_prometheus_histogram_and_grouping () =
  let r = Obs.Registry.create () in
  (* Two collectors interleave families: the exposition must regroup so
     each family's lines are consecutive with one HELP/TYPE header. *)
  let counter label v =
    {
      Obs.Registry.name = "nbti_requests_total";
      help = "Requests.";
      labels = [ ("endpoint", label) ];
      value = Obs.Registry.Counter v;
    }
  in
  Obs.Registry.register r (fun () ->
      [
        counter "a" 1.0;
        {
          Obs.Registry.name = "nbti_latency_seconds";
          help = "Latency.";
          labels = [];
          value =
            Obs.Registry.Histogram
              { upper_bounds = [| 0.1; 1.0 |]; counts = [| 1; 2; 3 |]; sum = 4.5; count = 6 };
        };
      ]);
  Obs.Registry.register r (fun () -> [ counter "b" 2.0 ]);
  let text = Obs.Registry.to_prometheus r in
  check_contains "cumulative first bucket" text "nbti_latency_seconds_bucket{le=\"0.1\"} 1";
  check_contains "cumulative second bucket" text "nbti_latency_seconds_bucket{le=\"1\"} 3";
  check_contains "+Inf bucket = count" text "nbti_latency_seconds_bucket{le=\"+Inf\"} 6";
  check_contains "sum" text "nbti_latency_seconds_sum 4.5";
  check_contains "count" text "nbti_latency_seconds_count 6";
  check_contains "histogram TYPE" text "# TYPE nbti_latency_seconds histogram";
  (* One header per family, and both endpoint samples adjacent. *)
  let lines = String.split_on_char '\n' text in
  let type_lines = List.filter (contains "# TYPE nbti_requests_total") lines in
  Alcotest.(check int) "one TYPE line for the family" 1 (List.length type_lines);
  let family_lines =
    List.filter (fun l -> contains l "nbti_requests_total{" ) lines
  in
  Alcotest.(check int) "both samples rendered" 2 (List.length family_lines);
  let rec adjacent = function
    | a :: b :: _ when contains a "nbti_requests_total{endpoint=\"a\"}" ->
      contains b "nbti_requests_total{endpoint=\"b\"}"
    | _ :: rest -> adjacent rest
    | [] -> false
  in
  Alcotest.(check bool) "family lines consecutive" true (adjacent lines)

let test_prometheus_roundtrip_from_metrics () =
  let m = Server.Metrics.create () in
  Server.Metrics.record m ~endpoint:"analyze" ~ok:true ~elapsed_s:0.01;
  Server.Metrics.record m ~endpoint:"analyze" ~ok:false ~elapsed_s:0.02;
  Server.Metrics.incr_counter m "shed";
  let r = Obs.Registry.create () in
  Obs.Registry.register r (fun () -> Server.Metrics.registry_samples m);
  Obs.Registry.register_gauge r ~name:"nbti_pending_requests" (fun () -> 5.0);
  let text = Obs.Registry.to_prometheus r in
  check_contains "requests family" text "nbti_requests_total{endpoint=\"analyze\"} 2";
  check_contains "errors family" text "nbti_request_errors_total{endpoint=\"analyze\"} 1";
  check_contains "events family" text "nbti_events_total{event=\"shed\"} 1";
  check_contains "latency count" text
    "nbti_request_latency_seconds_count{endpoint=\"analyze\"} 2";
  check_contains "latency +Inf" text
    "nbti_request_latency_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 2";
  check_contains "gauge" text "nbti_pending_requests 5";
  (* A raising collector contributes nothing and does not break the scrape. *)
  Obs.Registry.register r (fun () -> failwith "scrape bomb");
  let text' = Obs.Registry.to_prometheus r in
  check_contains "scrape survives a raising collector" text' "nbti_pending_requests 5"

(* --- Trace --- *)

let with_collector ?capacity f =
  let c = Obs.Trace.create ?capacity () in
  Obs.Trace.install c;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () -> f c)

let test_trace_nesting () =
  with_collector @@ fun c ->
  Obs.Ctx.with_id "req-42" (fun () ->
      Obs.Trace.with_span ~cat:"flow" "outer" (fun () ->
          Obs.Trace.with_span "inner" (fun () -> ())));
  match Obs.Trace.spans c with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner path" "outer;inner" inner.Obs.Trace.path;
    Alcotest.(check string) "outer path" "outer" outer.Obs.Trace.path;
    Alcotest.(check string) "category" "flow" outer.Obs.Trace.cat;
    Alcotest.(check (option string)) "inner cid" (Some "req-42") inner.Obs.Trace.cid;
    Alcotest.(check (option string)) "outer cid" (Some "req-42") outer.Obs.Trace.cid;
    Alcotest.(check bool) "ok" true (inner.Obs.Trace.ok && outer.Obs.Trace.ok);
    Alcotest.(check bool) "inner nested in time" true
      (inner.Obs.Trace.ts_us >= outer.Obs.Trace.ts_us
      && inner.Obs.Trace.dur_us <= outer.Obs.Trace.dur_us)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_trace_capacity_drop () =
  with_collector ~capacity:2 @@ fun c ->
  for i = 1 to 5 do
    Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans c) in
  Alcotest.(check (list string)) "newest spans retained, oldest first" [ "s4"; "s5" ] names;
  Alcotest.(check int) "dropped counts overwrites" 3 (Obs.Trace.dropped c);
  Obs.Trace.clear c;
  Alcotest.(check int) "clear empties" 0 (List.length (Obs.Trace.spans c))

let test_trace_exception_and_disabled () =
  (* Disabled: with_span is transparent — value through, no recording. *)
  Obs.Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ());
  Alcotest.(check int) "thunk still runs" 7 (Obs.Trace.with_span "ghost" (fun () -> 7));
  with_collector @@ fun c ->
  (match Obs.Trace.with_span "boom" (fun () -> failwith "kaput") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "exception re-raised" "kaput" m);
  match Obs.Trace.spans c with
  | [ s ] -> Alcotest.(check bool) "span marked not ok" false s.Obs.Trace.ok
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_trace_chrome_json () =
  let json =
    with_collector @@ fun c ->
    Obs.Ctx.with_id "cid-1" (fun () ->
        Obs.Trace.with_span ~args:[ ("gates", Obs.Fields.Int 160) ] "analyze" (fun () ->
            Obs.Trace.instant ~cat:"cache" "cache.hit"));
    Obs.Trace.to_chrome_json c
  in
  match Server.Json.of_string json with
  | Server.Json.Assoc fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Server.Json.List events) ->
      Alcotest.(check int) "span + instant" 2 (List.length events);
      let has_path =
        List.exists
          (function
            | Server.Json.Assoc ev -> (
              match List.assoc_opt "args" ev with
              | Some (Server.Json.Assoc args) ->
                List.assoc_opt "path" args = Some (Server.Json.String "analyze")
                && List.assoc_opt "cid" args = Some (Server.Json.String "cid-1")
              | _ -> false)
            | _ -> false)
          events
      in
      Alcotest.(check bool) "span event carries path and cid" true has_path
    | _ -> Alcotest.fail "traceEvents missing");
    Alcotest.(check bool) "droppedSpans present" true
      (List.mem_assoc "droppedSpans" fields)
  | _ -> Alcotest.fail "chrome export is not a JSON object"

let test_flame_summary () =
  with_collector @@ fun c ->
  Obs.Trace.with_span "a" (fun () ->
      Obs.Trace.with_span "b" (fun () -> ());
      Obs.Trace.with_span "b" (fun () -> ()));
  let flame = Obs.Trace.flame_summary c in
  check_contains "parent line" flame "a";
  check_contains "child line counts calls" flame "a;b"

(* --- Trace: distributed propagation --- *)

let test_trace_ids_and_propagation () =
  let id1 = Obs.Trace.new_trace_id () and id2 = Obs.Trace.new_trace_id () in
  Alcotest.(check int) "trace id is 32 hex chars" 32 (String.length id1);
  Alcotest.(check bool) "trace ids are hex" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) id1);
  Alcotest.(check bool) "trace ids distinct" true (id1 <> id2);
  Alcotest.(check int) "span hex is 16 chars" 16 (String.length (Obs.Trace.span_hex 7));
  (* No context installed: nothing to propagate. *)
  Alcotest.(check bool) "no context, no propagation" true
    (Obs.Trace.propagation_context () = None);
  with_collector @@ fun c ->
  let remote = "00c0ffee00c0ffee" in
  let inner_prop = ref None in
  Obs.Ctx.with_trace
    { Obs.Ctx.trace_id = id1; parent_span = Some remote }
    (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          inner_prop := Obs.Trace.propagation_context ();
          Obs.Trace.with_span "inner" (fun () -> ())));
  (* The outgoing context points at the innermost open span. *)
  (match !inner_prop with
  | Some tr ->
    Alcotest.(check string) "propagated trace id" id1 tr.Obs.Ctx.trace_id;
    (match tr.Obs.Ctx.parent_span with
    | Some p -> Alcotest.(check int) "parent is a span hex" 16 (String.length p)
    | None -> Alcotest.fail "propagation lost the open span")
  | None -> Alcotest.fail "no propagation context under an installed trace");
  match Obs.Trace.spans c with
  | [ inner; outer ] ->
    Alcotest.(check (option string)) "outer carries the trace id" (Some id1)
      outer.Obs.Trace.trace_id;
    Alcotest.(check (option string)) "inner carries the trace id" (Some id1)
      inner.Obs.Trace.trace_id;
    (* Root spans parent onto the remote span from the wire; nested
       spans parent locally. *)
    Alcotest.(check bool) "outer parents onto the remote span" true
      (outer.Obs.Trace.parent = Obs.Trace.Remote remote);
    Alcotest.(check bool) "inner parents onto outer" true
      (inner.Obs.Trace.parent = Obs.Trace.Span outer.Obs.Trace.seq);
    (match !inner_prop with
    | Some { Obs.Ctx.parent_span = Some p; _ } ->
      Alcotest.(check string) "propagation pointed at outer"
        (Obs.Trace.span_hex outer.Obs.Trace.seq) p
    | _ -> ())
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_trace_drop_counter_sample () =
  with_collector ~capacity:1 @@ fun _ ->
  Obs.Trace.with_span "a" (fun () -> ());
  Obs.Trace.with_span "b" (fun () -> ());
  match Obs.Trace.registry_samples () with
  | [ s ] ->
    Alcotest.(check string) "drop counter family" "nbti_trace_dropped_spans_total"
      s.Obs.Registry.name;
    Alcotest.(check bool) "one overwrite counted" true (s.Obs.Registry.value = Obs.Registry.Counter 1.0)
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

(* --- Registry: render / of_prometheus round trip --- *)

let test_prometheus_parse_roundtrip () =
  let samples =
    [
      {
        Obs.Registry.name = "nbti_requests_total";
        help = "Requests.";
        labels = [ ("endpoint", "analyze") ];
        value = Obs.Registry.Counter 12.0;
      };
      {
        Obs.Registry.name = "nbti_pending_requests";
        help = "Pending.";
        labels = [];
        value = Obs.Registry.Gauge 3.0;
      };
      {
        Obs.Registry.name = "nbti_request_latency_seconds";
        help = "Latency.";
        labels = [ ("endpoint", "analyze") ];
        value =
          Obs.Registry.Histogram
            { upper_bounds = [| 0.1; 1.0 |]; counts = [| 1; 2; 3 |]; sum = 4.5; count = 6 };
      };
    ]
  in
  let parsed = Obs.Registry.of_prometheus (Obs.Registry.render samples) in
  Alcotest.(check int) "all families parsed back" 3 (List.length parsed);
  let find name = List.find (fun s -> s.Obs.Registry.name = name) parsed in
  (match (find "nbti_requests_total").Obs.Registry.value with
  | Obs.Registry.Counter v -> Alcotest.(check (float 1e-9)) "counter value" 12.0 v
  | _ -> Alcotest.fail "counter type lost");
  Alcotest.(check (list (pair string string))) "labels survive"
    [ ("endpoint", "analyze") ]
    (find "nbti_requests_total").Obs.Registry.labels;
  (match (find "nbti_request_latency_seconds").Obs.Registry.value with
  | Obs.Registry.Histogram { upper_bounds; counts; sum; count } ->
    (* of_prometheus must de-cumulate the rendered buckets back to the
       original per-bucket counts. *)
    Alcotest.(check (array (float 1e-9))) "bounds" [| 0.1; 1.0 |] upper_bounds;
    Alcotest.(check (array int)) "per-bucket counts" [| 1; 2; 3 |] counts;
    Alcotest.(check (float 1e-9)) "sum" 4.5 sum;
    Alcotest.(check int) "count" 6 count
  | _ -> Alcotest.fail "histogram type lost");
  (* render ∘ of_prometheus ∘ render is a fixpoint *)
  Alcotest.(check string) "second round trip is a fixpoint"
    (Obs.Registry.render samples)
    (Obs.Registry.render parsed)

(* --- Slo --- *)

let test_slo_parse_spec () =
  (match Obs.Slo.parse_spec "analyze=50ms:99,calibrate=2s:99.9" with
  | Ok [ a; c ] ->
    Alcotest.(check string) "op" "analyze" a.Obs.Slo.op;
    Alcotest.(check (float 1e-9)) "50ms threshold" 0.05 a.Obs.Slo.threshold_s;
    Alcotest.(check (float 1e-9)) "99% target" 0.99 a.Obs.Slo.target;
    Alcotest.(check (float 1e-9)) "2s threshold" 2.0 c.Obs.Slo.threshold_s;
    Alcotest.(check (float 1e-9)) "99.9% target" 0.999 c.Obs.Slo.target
  | Ok l -> Alcotest.failf "expected 2 objectives, got %d" (List.length l)
  | Error m -> Alcotest.fail m);
  (match Obs.Slo.parse_spec "analyze=250us:90" with
  | Ok [ a ] -> Alcotest.(check (float 1e-12)) "us threshold" 2.5e-4 a.Obs.Slo.threshold_s
  | _ -> Alcotest.fail "us spec should parse");
  List.iter
    (fun bad ->
      match Obs.Slo.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should be rejected" bad)
    [ "analyze"; "analyze=50ms"; "analyze=50ms:0"; "analyze=50ms:100"; "analyze=-1s:99"; "=50ms:99" ]

let test_slo_burn_rates () =
  let obj = { Obs.Slo.op = "analyze"; threshold_s = 0.05; target = 0.99 } in
  let slo = Obs.Slo.create ~now:1000.0 [ obj ] in
  (* 100 requests, 2 bad (one error, one too slow): bad fraction 0.02
     against a 0.01 budget = burn rate 2.0 on both windows. *)
  for i = 1 to 98 do
    Obs.Slo.observe ~now:(1000.0 +. float_of_int i) slo ~op:"analyze" ~ok:true ~elapsed_s:0.01
  done;
  Obs.Slo.observe ~now:1099.0 slo ~op:"analyze" ~ok:false ~elapsed_s:0.01;
  Obs.Slo.observe ~now:1099.5 slo ~op:"analyze" ~ok:true ~elapsed_s:0.2;
  (* an op with no objective is ignored *)
  Obs.Slo.observe ~now:1099.5 slo ~op:"stats" ~ok:false ~elapsed_s:9.9;
  (match Obs.Slo.status ~now:1100.0 slo with
  | [ { Obs.Slo.objective; windows = [ w5; w1h ] } ] ->
    Alcotest.(check string) "objective op" "analyze" objective.Obs.Slo.op;
    Alcotest.(check string) "5m label" "5m" w5.Obs.Slo.label;
    Alcotest.(check int) "5m total" 100 w5.Obs.Slo.total;
    Alcotest.(check int) "5m bad" 2 w5.Obs.Slo.bad;
    Alcotest.(check (float 1e-9)) "5m burn" 2.0 w5.Obs.Slo.burn_rate;
    Alcotest.(check string) "1h label" "1h" w1h.Obs.Slo.label;
    Alcotest.(check (float 1e-9)) "1h burn" 2.0 w1h.Obs.Slo.burn_rate
  | l -> Alcotest.failf "expected 1 status with 2 windows, got %d" (List.length l));
  let samples = Obs.Slo.registry_samples ~now:1100.0 slo in
  let burn =
    List.find_opt
      (fun s ->
        s.Obs.Registry.name = "nbti_slo_burn_rate"
        && List.mem ("op", "analyze") s.Obs.Registry.labels
        && List.mem ("window", "5m") s.Obs.Registry.labels)
      samples
  in
  (match burn with
  | Some { Obs.Registry.value = Obs.Registry.Gauge v; _ } ->
    Alcotest.(check (float 1e-9)) "burn rate gauge" 2.0 v
  | _ -> Alcotest.fail "nbti_slo_burn_rate{op,window} sample missing");
  (* 10 minutes later the observations age out of the 5m window but
     stay in the hour (the clock only moves forward). *)
  match Obs.Slo.status ~now:1700.0 slo with
  | [ { Obs.Slo.windows = [ w5; w1h ]; _ } ] ->
    Alcotest.(check int) "5m window drained" 0 w5.Obs.Slo.total;
    Alcotest.(check (float 1e-9)) "empty window burns nothing" 0.0 w5.Obs.Slo.burn_rate;
    Alcotest.(check int) "1h window retains" 100 w1h.Obs.Slo.total
  | _ -> Alcotest.fail "unexpected status shape"

(* --- Tracefile: validate + multi-process merge --- *)

let test_tracefile_merge () =
  let file_a =
    Server.Json.of_string
      {|{"traceEvents":[
          {"name":"cli.request","ph":"X","pid":100,"tid":0,"ts":5.0,"dur":2.0,
           "args":{"trace_id":"t1"}}],
         "t0_us":1000.0,"droppedSpans":2}|}
  in
  let file_b =
    Server.Json.of_string
      {|{"traceEvents":[
          {"name":"process_name","ph":"M","pid":100,"tid":0,"args":{"name":"router"}},
          {"name":"request","ph":"X","pid":100,"tid":0,"ts":1.0,"dur":3.0,
           "args":{"trace_id":"t1"}}],
         "t0_us":1500.0,"droppedSpans":1}|}
  in
  let merged = Server.Tracefile.merge [ (Some "client", file_a); (None, file_b) ] in
  (match Server.Tracefile.validate merged with
  | Error m -> Alcotest.fail m
  | Ok s ->
    Alcotest.(check int) "spans survive" 2 s.Server.Tracefile.spans;
    Alcotest.(check int) "dropped summed" 3 s.Server.Tracefile.dropped;
    (* Both files used pid 100; the merge must keep them apart, carrying
       file B's own process_name and synthesizing file A's fallback. *)
    Alcotest.(check (list (pair int string))) "processes named and disambiguated"
      [ (1, "client"); (2, "router") ]
      (List.sort compare s.Server.Tracefile.processes));
  (match Server.Tracefile.parse merged with
  | Error m -> Alcotest.fail m
  | Ok p ->
    Alcotest.(check (list string)) "one shared trace id" [ "t1" ] (Server.Tracefile.trace_ids p);
    Alcotest.(check (float 1e-9)) "merged origin is the earliest input" 1000.0
      p.Server.Tracefile.t0_us;
    (* File B starts 500 us after file A's origin: its event must be
       rebased onto the shared timeline. *)
    let ts_of name =
      List.find_map
        (fun e ->
          match (Server.Json.member_opt "name" e, Server.Json.member_opt "ts" e) with
          | Some (Server.Json.String n), Some ts when n = name ->
            Some (Server.Json.to_float ts)
          | _ -> None)
        p.Server.Tracefile.events
    in
    Alcotest.(check (option (float 1e-9))) "file A keeps its ts" (Some 5.0)
      (ts_of "cli.request");
    Alcotest.(check (option (float 1e-9))) "file B rebased by +500" (Some 501.0)
      (ts_of "request"));
  (* validation failures are structural, not crashes *)
  (match Server.Tracefile.validate (Server.Json.Assoc []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "object without traceEvents should not validate");
  match
    Server.Tracefile.validate
      (Server.Json.Assoc [ ("traceEvents", Server.Json.List [ Server.Json.Int 3 ]) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object event should not validate"

(* --- Log --- *)

let with_log_capture f =
  let path = Filename.temp_file "obs_log" ".jsonl" in
  let oc = open_out path in
  Obs.Log.set_channel oc;
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_channel stderr;
      Obs.Log.set_json false;
      Obs.Log.set_level (Some Obs.Log.Warn);
      close_out_noerr oc;
      Sys.remove path)
    (fun () ->
      f ();
      flush oc;
      let ic = open_in path in
      let lines = In_channel.input_lines ic in
      close_in ic;
      lines)

let test_log_level_filtering () =
  let lines =
    with_log_capture (fun () ->
        Obs.Log.set_json true;
        Obs.Log.set_level (Some Obs.Log.Warn);
        Alcotest.(check bool) "debug filtered" false (Obs.Log.would_log Obs.Log.Debug);
        Alcotest.(check bool) "error passes" true (Obs.Log.would_log Obs.Log.Error);
        Obs.Log.debug "invisible";
        Obs.Log.info "also invisible";
        Obs.Log.warn "visible";
        Obs.Log.set_level None;
        Alcotest.(check bool) "quiet filters everything" false (Obs.Log.would_log Obs.Log.Error);
        Obs.Log.error "swallowed")
  in
  Alcotest.(check int) "only the warn record emitted" 1 (List.length lines);
  check_contains "warn record" (List.hd lines) "\"msg\":\"visible\""

let test_log_jsonl_shape () =
  let lines =
    with_log_capture (fun () ->
        Obs.Log.set_json true;
        Obs.Log.set_level (Some Obs.Log.Debug);
        Obs.Ctx.with_id "req-7" (fun () ->
            Obs.Log.info
              ~fields:[ ("gates", Obs.Fields.Int 160); ("circuit", Obs.Fields.Str "c432") ]
              "analyze done"))
  in
  match lines with
  | [ line ] -> (
    match Server.Json.of_string line with
    | Server.Json.Assoc fields ->
      Alcotest.(check bool) "ts present" true (List.mem_assoc "ts" fields);
      Alcotest.(check bool) "level=info" true
        (List.assoc_opt "level" fields = Some (Server.Json.String "info"));
      Alcotest.(check bool) "msg" true
        (List.assoc_opt "msg" fields = Some (Server.Json.String "analyze done"));
      Alcotest.(check bool) "cid" true
        (List.assoc_opt "cid" fields = Some (Server.Json.String "req-7"));
      Alcotest.(check bool) "int field" true
        (match List.assoc_opt "gates" fields with
        | Some (Server.Json.Int 160) -> true
        | Some (Server.Json.Float f) -> f = 160.0
        | _ -> false);
      Alcotest.(check bool) "string field" true
        (List.assoc_opt "circuit" fields = Some (Server.Json.String "c432"))
    | _ -> Alcotest.fail "record is not a JSON object")
  | lines -> Alcotest.failf "expected 1 record, got %d" (List.length lines)

let test_log_level_of_string () =
  (match Obs.Log.level_of_string "DEBUG" with
  | Ok (Some Obs.Log.Debug) -> ()
  | _ -> Alcotest.fail "DEBUG should parse");
  (match Obs.Log.level_of_string "quiet" with
  | Ok None -> ()
  | _ -> Alcotest.fail "quiet should parse to None");
  match Obs.Log.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus level should be rejected"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "quantile clamping" `Quick test_quantile_clamping;
          Alcotest.test_case "concurrent domains" `Quick test_concurrent_record;
        ] );
      ( "registry",
        [
          Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
          Alcotest.test_case "histogram + family grouping" `Quick
            test_prometheus_histogram_and_grouping;
          Alcotest.test_case "metrics round-trip" `Quick test_prometheus_roundtrip_from_metrics;
          Alcotest.test_case "render/of_prometheus round trip" `Quick
            test_prometheus_parse_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting, paths, cids" `Quick test_trace_nesting;
          Alcotest.test_case "ring capacity + dropped" `Quick test_trace_capacity_drop;
          Alcotest.test_case "exceptions + disabled" `Quick test_trace_exception_and_disabled;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_json;
          Alcotest.test_case "flame summary" `Quick test_flame_summary;
          Alcotest.test_case "ids, propagation, remote parents" `Quick
            test_trace_ids_and_propagation;
          Alcotest.test_case "drop counter registry sample" `Quick
            test_trace_drop_counter_sample;
        ] );
      ( "tracefile",
        [ Alcotest.test_case "multi-process merge" `Quick test_tracefile_merge ] );
      ( "slo",
        [
          Alcotest.test_case "spec parsing" `Quick test_slo_parse_spec;
          Alcotest.test_case "burn-rate windows" `Quick test_slo_burn_rates;
        ] );
      ( "log",
        [
          Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "jsonl shape" `Quick test_log_jsonl_shape;
          Alcotest.test_case "level parsing" `Quick test_log_level_of_string;
        ] );
    ]
