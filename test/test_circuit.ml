(* Tests for the netlist substrate: the DAG representation, the .bench
   reader/writer, and the structural benchmark generators. *)

let check_close ?(eps = 1e-9) msg expected actual = Alcotest.(check (float eps)) msg expected actual
let _ = check_close

let pi name = Circuit.Netlist.Primary_input { name }
let gate cell fanin name = Circuit.Netlist.Gate { cell; fanin; name }

(* --- Netlist core --- *)

let test_create_simple () =
  let nodes = [| pi "a"; pi "b"; gate (Cell.Stdcell.nand_ 2) [| 0; 1 |] "g" |] in
  let t = Circuit.Netlist.create ~name:"t" nodes ~outputs:[| 2 |] in
  Alcotest.(check int) "nodes" 3 (Circuit.Netlist.n_nodes t);
  Alcotest.(check int) "gates" 1 (Circuit.Netlist.n_gates t);
  Alcotest.(check int) "pis" 2 (Circuit.Netlist.n_primary_inputs t);
  Alcotest.(check string) "name" "g" (Circuit.Netlist.node_name t 2)

let test_create_topo_sorts () =
  (* Gate listed before its fanin: create must renumber. *)
  let nodes = [| gate Cell.Stdcell.inv [| 1 |] "g"; pi "a" |] in
  let t = Circuit.Netlist.create ~name:"t" nodes ~outputs:[| 0 |] in
  (match t.Circuit.Netlist.nodes.(0) with
  | Circuit.Netlist.Primary_input _ -> ()
  | _ -> Alcotest.fail "PI should come first after sorting");
  Alcotest.(check int) "output follows renumbering" 1 t.Circuit.Netlist.outputs.(0)

let test_create_rejects_cycle () =
  let nodes =
    [| pi "a"; gate Cell.Stdcell.inv [| 2 |] "g1"; gate Cell.Stdcell.inv [| 1 |] "g2" |]
  in
  Alcotest.(check bool) "cycle rejected" true
    (try
       ignore (Circuit.Netlist.create ~name:"t" nodes ~outputs:[| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_create_rejects_arity () =
  let nodes = [| pi "a"; gate (Cell.Stdcell.nand_ 2) [| 0 |] "g" |] in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore (Circuit.Netlist.create ~name:"t" nodes ~outputs:[| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_create_rejects_duplicates_and_empty () =
  let nodes = [| pi "a"; pi "a" |] in
  Alcotest.(check bool) "duplicate names" true
    (try
       ignore (Circuit.Netlist.create ~name:"t" nodes ~outputs:[| 0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no outputs" true
    (try
       ignore (Circuit.Netlist.create ~name:"t" [| pi "a" |] ~outputs:[||]);
       false
     with Invalid_argument _ -> true)

let test_levels_depth_fanout () =
  let c17 = Circuit.Generators.c17 () in
  Alcotest.(check int) "c17 depth" 3 (Circuit.Netlist.depth c17);
  let levels = Circuit.Netlist.levels c17 in
  Array.iter (fun id -> Alcotest.(check int) "PI level 0" 0 levels.(id)) (Circuit.Netlist.primary_inputs c17);
  let fanout = Circuit.Netlist.fanout c17 in
  (* G11 drives G16 and G19. *)
  let g11 = ref (-1) in
  Array.iteri
    (fun i _ -> if Circuit.Netlist.node_name c17 i = "G11" then g11 := i)
    c17.Circuit.Netlist.nodes;
  Alcotest.(check int) "G11 fanout" 2 (Array.length fanout.(!g11))

let test_stats () =
  let s = Circuit.Netlist.stats (Circuit.Generators.c17 ()) in
  Alcotest.(check int) "pi" 5 s.Circuit.Netlist.n_pi;
  Alcotest.(check int) "po" 2 s.Circuit.Netlist.n_po;
  Alcotest.(check int) "gates" 6 s.Circuit.Netlist.n_gates;
  Alcotest.(check (list (pair string int))) "mix" [ ("NAND2", 6) ] s.Circuit.Netlist.by_cell

let test_builder () =
  let b = Circuit.Netlist.Builder.create ~name:"adder" in
  let a = Circuit.Netlist.Builder.input b "a" in
  let c = Circuit.Netlist.Builder.input b "b" in
  let x = Circuit.Netlist.Builder.xor2 b a c in
  Circuit.Netlist.Builder.output b x;
  let t = Circuit.Netlist.Builder.finish b in
  Alcotest.(check int) "one gate" 1 (Circuit.Netlist.n_gates t);
  Alcotest.(check bool) "is output" true (Circuit.Netlist.is_output t x)

let test_builder_fresh_names () =
  let b = Circuit.Netlist.Builder.create ~name:"t" in
  let a = Circuit.Netlist.Builder.input b "x" in
  let i1 = Circuit.Netlist.Builder.gate b ~name:"n" ~cell:Cell.Stdcell.inv [| a |] in
  let i2 = Circuit.Netlist.Builder.gate b ~name:"n" ~cell:Cell.Stdcell.inv [| a |] in
  Circuit.Netlist.Builder.output b i2;
  let t = Circuit.Netlist.Builder.finish b in
  Alcotest.(check bool) "names deduplicated" true
    (Circuit.Netlist.node_name t i1 <> Circuit.Netlist.node_name t i2)

let test_builder_rejects_bad_fanin () =
  let b = Circuit.Netlist.Builder.create ~name:"t" in
  Alcotest.(check bool) "unknown id" true
    (try
       ignore (Circuit.Netlist.Builder.gate b ~cell:Cell.Stdcell.inv [| 5 |]);
       false
     with Invalid_argument _ -> true)

(* --- Bench_io --- *)

let c17_reference_outputs inputs =
  (* c17 implements G22 = NAND(G10,G16), G23 = NAND(G16,G19) over the
     published NAND structure. *)
  let g1 = inputs.(0) and g2 = inputs.(1) and g3 = inputs.(2) and g6 = inputs.(3) and g7 = inputs.(4) in
  let nand a b = not (a && b) in
  let g10 = nand g1 g3 and g11 = nand g3 g6 in
  let g16 = nand g2 g11 in
  let g19 = nand g11 g7 in
  [| nand g10 g16; nand g16 g19 |]

let test_c17_function () =
  let c17 = Circuit.Generators.c17 () in
  for idx = 0 to 31 do
    let inputs = Array.init 5 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check (array bool))
      (Printf.sprintf "vector %d" idx)
      (c17_reference_outputs inputs)
      (Logic.Eval.eval_outputs c17 ~inputs)
  done

let test_bench_roundtrip () =
  let c17 = Circuit.Generators.c17 () in
  let text = Circuit.Bench_io.to_string c17 in
  let back = Circuit.Bench_io.parse_string ~name:"c17rt" text in
  for idx = 0 to 31 do
    let inputs = Array.init 5 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check (array bool))
      "roundtrip preserves logic"
      (Logic.Eval.eval_outputs c17 ~inputs)
      (Logic.Eval.eval_outputs back ~inputs)
  done

let test_bench_forward_reference () =
  (* Signals referenced before definition, as in real ISCAS files. *)
  let t =
    Circuit.Bench_io.parse_string ~name:"fwd"
      "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NOT(a)\n"
  in
  Alcotest.(check (array bool)) "double inversion" [| true |]
    (Logic.Eval.eval_outputs t ~inputs:[| true |])

let test_bench_wide_gate_decomposition () =
  (* 6-input NAND must decompose into library cells but keep the logic. *)
  let t =
    Circuit.Bench_io.parse_string ~name:"wide"
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(z)\nz = NAND(a,b,c,d,e,f)\n"
  in
  for idx = 0 to 63 do
    let inputs = Array.init 6 (fun i -> (idx lsr i) land 1 = 1) in
    let expected = not (Array.for_all Fun.id inputs) in
    Alcotest.(check (array bool)) "NAND6" [| expected |] (Logic.Eval.eval_outputs t ~inputs)
  done

let test_bench_xor_chain () =
  let t =
    Circuit.Bench_io.parse_string ~name:"x3" "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nz = XOR(a,b,c)\n"
  in
  for idx = 0 to 7 do
    let inputs = Array.init 3 (fun i -> (idx lsr i) land 1 = 1) in
    let expected = Array.fold_left (fun acc b -> acc <> b) false inputs in
    Alcotest.(check (array bool)) "XOR3" [| expected |] (Logic.Eval.eval_outputs t ~inputs)
  done

let test_bench_comments_and_spacing () =
  let t =
    Circuit.Bench_io.parse_string ~name:"sp"
      "# header\n\n  INPUT( a )\nOUTPUT(z)  # trailing\nz = NOT( a )\n"
  in
  Alcotest.(check int) "one gate" 1 (Circuit.Netlist.n_gates t)

let test_bench_crlf () =
  (* DOS line endings must parse to the same netlist as LF. *)
  let lf = "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n" in
  let crlf = "INPUT(a)\r\nINPUT(b)\r\nOUTPUT(z)\r\nz = NAND(a, b)\r\n" in
  let cr_only = "INPUT(a)\rINPUT(b)\rOUTPUT(z)\rz = NAND(a, b)\r" in
  let t_lf = Circuit.Bench_io.parse_string ~name:"t" lf in
  let t_crlf = Circuit.Bench_io.parse_string ~name:"t" crlf in
  let t_cr = Circuit.Bench_io.parse_string ~name:"t" cr_only in
  Alcotest.(check string) "crlf same netlist" (Circuit.Netlist.digest t_lf)
    (Circuit.Netlist.digest t_crlf);
  Alcotest.(check string) "lone cr same netlist" (Circuit.Netlist.digest t_lf)
    (Circuit.Netlist.digest t_cr);
  (* a CRLF comment line must not swallow the next line *)
  let commented = "# header\r\nINPUT(a)\r\nOUTPUT(z)\r\nz = NOT(a)\r\n" in
  Alcotest.(check int) "comment line" 1
    (Circuit.Netlist.n_gates (Circuit.Bench_io.parse_string ~name:"t" commented))

let test_bench_trailing_whitespace () =
  let padded = "INPUT(a)   \nINPUT(b)\t\nOUTPUT(z)  \t \nz = NAND(a, b)    \n\t\n" in
  let t = Circuit.Bench_io.parse_string ~name:"t" padded in
  Alcotest.(check int) "one gate" 1 (Circuit.Netlist.n_gates t);
  Alcotest.(check int) "two inputs" 2 (Circuit.Netlist.n_primary_inputs t)

let test_netlist_digest () =
  (* digest is structural: stable across names, sensitive to structure *)
  let parse text = Circuit.Bench_io.parse_string ~name:"t" text in
  let a = parse "INPUT(x)\nINPUT(y)\nOUTPUT(o)\no = NAND(x, y)\n" in
  let b = parse "INPUT(p)\nINPUT(q)\nOUTPUT(r)\nr = NAND(p, q)\n" in
  let c = parse "INPUT(x)\nINPUT(y)\nOUTPUT(o)\no = NOR(x, y)\n" in
  Alcotest.(check string) "names don't matter" (Circuit.Netlist.digest a) (Circuit.Netlist.digest b);
  Alcotest.(check bool) "cells matter" true (Circuit.Netlist.digest a <> Circuit.Netlist.digest c);
  let c17 = Circuit.Generators.c17 () in
  Alcotest.(check string) "deterministic" (Circuit.Netlist.digest c17)
    (Circuit.Netlist.digest (Circuit.Generators.c17 ()))

let test_bench_errors () =
  let expect_failure text =
    try
      ignore (Circuit.Bench_io.parse_string ~name:"bad" text);
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "undefined signal" true (expect_failure "INPUT(a)\nOUTPUT(z)\nz = NOT(q)\n");
  Alcotest.(check bool) "redefinition" true
    (expect_failure "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n");
  Alcotest.(check bool) "unknown op" true (expect_failure "INPUT(a)\nOUTPUT(z)\nz = MAJ(a,a,a)\n");
  Alcotest.(check bool) "cycle" true (expect_failure "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NOT(z)\n");
  Alcotest.(check bool) "syntax" true (expect_failure "INPUT a\n")

let test_bench_file_io () =
  let path = Filename.temp_file "nbti_test" ".bench" in
  let c17 = Circuit.Generators.c17 () in
  Circuit.Bench_io.write_file c17 ~path;
  let back = Circuit.Bench_io.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "gates preserved" (Circuit.Netlist.n_gates c17) (Circuit.Netlist.n_gates back);
  Alcotest.(check string) "name from basename"
    (Filename.remove_extension (Filename.basename path))
    back.Circuit.Netlist.name

(* --- Generators --- *)

let test_profiles_have_all_circuits () =
  let names = List.map (fun p -> p.Circuit.Generators.name) Circuit.Generators.iscas85_profiles in
  Alcotest.(check int) "eleven circuits (incl. c17)" 11 (List.length names);
  Alcotest.(check bool) "contains c6288" true (List.mem "c6288" names)

let test_random_dag_profile_exact () =
  let p = List.find (fun p -> p.Circuit.Generators.name = "c432") Circuit.Generators.iscas85_profiles in
  let t = Circuit.Generators.random_dag p in
  let s = Circuit.Netlist.stats t in
  Alcotest.(check int) "pi" p.Circuit.Generators.n_pi s.Circuit.Netlist.n_pi;
  Alcotest.(check int) "po" p.Circuit.Generators.n_po s.Circuit.Netlist.n_po;
  Alcotest.(check int) "gates" p.Circuit.Generators.n_gates s.Circuit.Netlist.n_gates

let test_random_dag_deterministic () =
  let t1 = Circuit.Generators.by_name "c1908" and t2 = Circuit.Generators.by_name "c1908" in
  Alcotest.(check string) "same bench text"
    (Circuit.Bench_io.to_string t1) (Circuit.Bench_io.to_string t2)

let test_random_dag_all_pis_used () =
  let t = Circuit.Generators.by_name "c2670" in
  let fanout = Circuit.Netlist.fanout t in
  Array.iter
    (fun id ->
      Alcotest.(check bool) "PI drives something" true (Array.length fanout.(id) > 0))
    (Circuit.Netlist.primary_inputs t)

let test_by_name_unknown () =
  Alcotest.check_raises "unknown circuit" Not_found (fun () ->
      ignore (Circuit.Generators.by_name "c9999"))

let test_small_suite () =
  Alcotest.(check int) "four circuits" 4 (List.length (Circuit.Generators.small_suite ()))

(* --- Multiplier --- *)

let eval_mult m ~width a b =
  let inputs =
    Array.init (2 * width) (fun i ->
        if i < width then (a lsr i) land 1 = 1 else (b lsr (i - width)) land 1 = 1)
  in
  let outs = Logic.Eval.eval_outputs m ~inputs in
  Array.to_list outs |> List.mapi (fun i bit -> if bit then 1 lsl i else 0) |> List.fold_left ( + ) 0

let test_multiplier_exhaustive_4x4 () =
  let m = Circuit.Multiplier.generate ~width:4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (eval_mult m ~width:4 a b)
    done
  done

let test_multiplier_spot_8x8 () =
  let m = Circuit.Multiplier.generate ~width:8 in
  List.iter
    (fun (a, b) -> Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (eval_mult m ~width:8 a b))
    [ (0, 0); (255, 255); (1, 200); (137, 91); (64, 64); (254, 3) ]

let test_c6288_like_shape () =
  let s = Circuit.Netlist.stats (Circuit.Multiplier.c6288_like ()) in
  Alcotest.(check int) "32 inputs" 32 s.Circuit.Netlist.n_pi;
  Alcotest.(check int) "32 outputs" 32 s.Circuit.Netlist.n_po;
  Alcotest.(check bool) "c6288 size class" true (s.Circuit.Netlist.n_gates > 1000);
  Alcotest.(check bool) "deep carry chains" true (s.Circuit.Netlist.depth > 50)

(* --- Ecc --- *)

let test_ecc_no_error_passthrough () =
  (* With consistent check bits the syndrome is zero and data passes
     through unchanged. *)
  let data_bits = 8 and check_bits = 4 in
  let t = Circuit.Ecc.generate ~data_bits ~check_bits () in
  let rng = Physics.Rng.create ~seed:77 in
  for _ = 1 to 50 do
    let data = Array.init data_bits (fun _ -> Physics.Rng.bool rng) in
    (* check bit k = xor of data bits whose (i+1) has bit k *)
    let check =
      Array.init check_bits (fun k ->
          let x = ref false in
          Array.iteri (fun i d -> if ((i + 1) lsr k) land 1 = 1 && d then x := not !x) data;
          !x)
    in
    let inputs = Array.append data check in
    Alcotest.(check (array bool)) "clean word passes" data (Logic.Eval.eval_outputs t ~inputs)
  done

let test_ecc_corrects_single_error () =
  let data_bits = 8 and check_bits = 4 in
  let t = Circuit.Ecc.generate ~data_bits ~check_bits () in
  let rng = Physics.Rng.create ~seed:78 in
  for _ = 1 to 50 do
    let data = Array.init data_bits (fun _ -> Physics.Rng.bool rng) in
    let check =
      Array.init check_bits (fun k ->
          let x = ref false in
          Array.iteri (fun i d -> if ((i + 1) lsr k) land 1 = 1 && d then x := not !x) data;
          !x)
    in
    (* Flip one data bit on the wire. *)
    let e = Physics.Rng.int rng data_bits in
    let corrupted = Array.mapi (fun i d -> if i = e then not d else d) data in
    let inputs = Array.append corrupted check in
    Alcotest.(check (array bool)) "single error corrected" data (Logic.Eval.eval_outputs t ~inputs)
  done

let test_c499_like_shape () =
  let s = Circuit.Netlist.stats (Circuit.Ecc.c499_like ()) in
  Alcotest.(check int) "41 inputs" 41 s.Circuit.Netlist.n_pi;
  Alcotest.(check int) "32 outputs" 32 s.Circuit.Netlist.n_po

let test_ecc_rejects_bad_params () =
  Alcotest.(check bool) "too few check bits" true
    (try
       ignore (Circuit.Ecc.generate ~data_bits:32 ~check_bits:5 ());
       false
     with Invalid_argument _ -> true)

(* --- Interrupt controller (c432's architecture) --- *)

let intc = Circuit.Interrupt.c432_like ()

let run_intc v =
  let a = Array.sub v 0 9 and b = Array.sub v 9 9 and c = Array.sub v 18 9 and e = Array.sub v 27 9 in
  (Circuit.Interrupt.reference ~a ~b ~c ~e, Logic.Eval.eval_outputs intc ~inputs:v)

let test_interrupt_shape () =
  let s = Circuit.Netlist.stats intc in
  Alcotest.(check int) "36 inputs like c432" 36 s.Circuit.Netlist.n_pi;
  Alcotest.(check int) "7 outputs like c432" 7 s.Circuit.Netlist.n_po;
  Alcotest.(check bool) "size class" true (s.Circuit.Netlist.n_gates > 80 && s.Circuit.Netlist.n_gates < 250)

let test_interrupt_random_vs_reference () =
  let rng = Physics.Rng.create ~seed:432 in
  for _ = 1 to 500 do
    let v = Array.init 36 (fun _ -> Physics.Rng.bool rng) in
    let expected, got = run_intc v in
    Alcotest.(check (array bool)) "matches behavioural model" expected got
  done

let test_interrupt_priority_semantics () =
  (* Directed: bus A beats B beats C on the same line; lowest line wins. *)
  let v = Array.make 36 false in
  Array.blit (Array.make 9 true) 0 v 27 9;
  (* enable all *)
  let with_requests reqs =
    let v = Array.copy v in
    List.iter (fun (bus, line) -> v.((bus * 9) + line) <- true) reqs;
    Logic.Eval.eval_outputs intc ~inputs:v
  in
  (* A3 and B3: bus A acknowledged, line code 4. *)
  let out = with_requests [ (0, 3); (1, 3) ] in
  Alcotest.(check (array bool)) "A beats B on the line"
    [| true; false; false; false; false; true; false |]
    out;
  (* B2 alone: PB, line code 3. *)
  let out = with_requests [ (1, 2) ] in
  Alcotest.(check (array bool)) "B alone" [| false; true; false; true; true; false; false |] out;
  (* C5 and A7: PA and PC both set; line 5 wins (code 6) because A7 is later. *)
  let out = with_requests [ (2, 5); (0, 7) ] in
  Alcotest.(check (array bool)) "lowest line wins"
    [| true; false; true; false; true; true; false |]
    out;
  (* Nothing requested: all outputs low. *)
  let out = with_requests [] in
  Alcotest.(check (array bool)) "idle" (Array.make 7 false) out

let test_interrupt_enables_gate_requests () =
  let v = Array.make 36 false in
  v.(0) <- true;
  (* a0 requested but e0 low *)
  let out = Logic.Eval.eval_outputs intc ~inputs:v in
  Alcotest.(check (array bool)) "disabled line ignored" (Array.make 7 false) out

let test_interrupt_scales () =
  let small = Circuit.Interrupt.generate ~channels:4 () in
  Alcotest.(check int) "4-channel inputs" 16 (Circuit.Netlist.n_primary_inputs small);
  Alcotest.(check bool) "bad channel count" true
    (try
       ignore (Circuit.Interrupt.generate ~channels:1 ());
       false
     with Invalid_argument _ -> true)

(* --- Alu --- *)

let test_alu_operations () =
  let width = 4 in
  let t = Circuit.Alu.generate ~width in
  (* Input order: s0, s1, then a bits, b bits, cin (builder order). *)
  let run ~s0 ~s1 ~a ~b ~cin =
    let inputs =
      Array.concat
        [
          [| s0; s1 |];
          Array.init width (fun i -> (a lsr i) land 1 = 1);
          Array.init width (fun i -> (b lsr i) land 1 = 1);
          [| cin |];
        ]
    in
    let outs = Logic.Eval.eval_outputs t ~inputs in
    (* Outputs: r0..r3, cout, zero, parity. *)
    let r = ref 0 in
    for i = 0 to width - 1 do
      if outs.(i) then r := !r lor (1 lsl i)
    done;
    (!r, outs.(width), outs.(width + 1), outs.(width + 2))
  in
  (* add *)
  let r, cout, zero, _ = run ~s0:false ~s1:false ~a:9 ~b:8 ~cin:false in
  Alcotest.(check int) "9+8 mod 16" 1 r;
  Alcotest.(check bool) "carry out" true cout;
  Alcotest.(check bool) "not zero" false zero;
  (* and *)
  let r, _, zero, _ = run ~s0:true ~s1:false ~a:12 ~b:10 ~cin:false in
  Alcotest.(check int) "12 and 10" 8 r;
  Alcotest.(check bool) "nonzero flag" false zero;
  (* or *)
  let r, _, _, _ = run ~s0:false ~s1:true ~a:12 ~b:10 ~cin:false in
  Alcotest.(check int) "12 or 10" 14 r;
  (* xor *)
  let r, _, _, _ = run ~s0:true ~s1:true ~a:12 ~b:10 ~cin:false in
  Alcotest.(check int) "12 xor 10" 6 r;
  (* zero flag *)
  let _, _, zero, _ = run ~s0:true ~s1:false ~a:5 ~b:10 ~cin:false in
  Alcotest.(check bool) "5 and 10 is zero" true zero

let test_c880_like_shape () =
  let s = Circuit.Netlist.stats (Circuit.Alu.c880_like ()) in
  Alcotest.(check int) "60 inputs like c880" 60 s.Circuit.Netlist.n_pi;
  Alcotest.(check bool) "c880 size class" true (s.Circuit.Netlist.n_gates > 250)

(* --- Verilog writer --- *)

let test_verilog_structure () =
  let v = Circuit.Verilog.to_string (Circuit.Generators.c17 ()) in
  let contains needle =
    try
      ignore (Str.search_forward (Str.regexp_string needle) v 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool) "module header" true (contains "module c17 (");
  Alcotest.(check bool) "endmodule" true (contains "endmodule");
  Alcotest.(check bool) "six nands" true (contains "nand u6_");
  Alcotest.(check bool) "po buffers" true (contains "buf upo0_")

let test_verilog_sanitizes () =
  let b = Circuit.Netlist.Builder.create ~name:"my-top!" in
  let a = Circuit.Netlist.Builder.input b "wire" in
  (* reserved word as a name *)
  let g = Circuit.Netlist.Builder.not_ b a in
  Circuit.Netlist.Builder.output b g;
  let v = Circuit.Verilog.to_string (Circuit.Netlist.Builder.finish b) in
  let contains needle =
    try
      ignore (Str.search_forward (Str.regexp_string needle) v 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool) "module name sanitized" true (contains "module my_top_ (");
  Alcotest.(check bool) "reserved input renamed" true (contains "input wire_w;")

let test_verilog_covers_whole_library () =
  (* A netlist using every cell family must emit without failure. *)
  let b = Circuit.Netlist.Builder.create ~name:"allcells" in
  let ins = Array.init 4 (fun i -> Circuit.Netlist.Builder.input b (Printf.sprintf "i%d" i)) in
  List.iter
    (fun cell ->
      let fanin = Array.init cell.Cell.Stdcell.n_inputs (fun k -> ins.(k)) in
      Circuit.Netlist.Builder.output b (Circuit.Netlist.Builder.gate b ~cell fanin))
    Cell.Stdcell.library;
  let v = Circuit.Verilog.to_string (Circuit.Netlist.Builder.finish b) in
  Alcotest.(check bool) "emitted" true (String.length v > 500)

(* --- Properties --- *)

let prop_generated_netlists_topological =
  QCheck.Test.make ~name:"generated netlists keep the topological invariant" ~count:8
    (QCheck.make (QCheck.Gen.oneofl [ "c17"; "c432"; "c499"; "c880"; "c1908" ]))
    (fun name ->
      let t = Circuit.Generators.by_name name in
      Array.for_all
        (fun node ->
          match node with
          | Circuit.Netlist.Primary_input _ -> true
          | Circuit.Netlist.Gate { fanin; _ } -> Array.for_all (fun f -> f >= 0) fanin)
        t.Circuit.Netlist.nodes)

let prop_bench_parser_total =
  QCheck.Test.make ~name:".bench parser only raises Failure on garbage" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 60))
    (fun text ->
      match Circuit.Bench_io.parse_string ~name:"fuzz" text with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_generated_netlists_topological; prop_bench_parser_total ]

let () =
  Alcotest.run "circuit"
    [
      ( "netlist",
        [
          Alcotest.test_case "create" `Quick test_create_simple;
          Alcotest.test_case "topological sorting" `Quick test_create_topo_sorts;
          Alcotest.test_case "cycle rejected" `Quick test_create_rejects_cycle;
          Alcotest.test_case "arity rejected" `Quick test_create_rejects_arity;
          Alcotest.test_case "duplicates/empty rejected" `Quick test_create_rejects_duplicates_and_empty;
          Alcotest.test_case "levels/depth/fanout" `Quick test_levels_depth_fanout;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "builder fresh names" `Quick test_builder_fresh_names;
          Alcotest.test_case "builder bad fanin" `Quick test_builder_rejects_bad_fanin;
        ] );
      ( "bench-io",
        [
          Alcotest.test_case "c17 truth table" `Quick test_c17_function;
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
          Alcotest.test_case "forward references" `Quick test_bench_forward_reference;
          Alcotest.test_case "wide gate decomposition" `Quick test_bench_wide_gate_decomposition;
          Alcotest.test_case "xor chain" `Quick test_bench_xor_chain;
          Alcotest.test_case "comments and spacing" `Quick test_bench_comments_and_spacing;
          Alcotest.test_case "crlf line endings" `Quick test_bench_crlf;
          Alcotest.test_case "trailing whitespace" `Quick test_bench_trailing_whitespace;
          Alcotest.test_case "structural digest" `Quick test_netlist_digest;
          Alcotest.test_case "errors" `Quick test_bench_errors;
          Alcotest.test_case "file io" `Quick test_bench_file_io;
        ] );
      ( "generators",
        [
          Alcotest.test_case "profiles" `Quick test_profiles_have_all_circuits;
          Alcotest.test_case "profile counts exact" `Quick test_random_dag_profile_exact;
          Alcotest.test_case "deterministic" `Quick test_random_dag_deterministic;
          Alcotest.test_case "all PIs used" `Quick test_random_dag_all_pis_used;
          Alcotest.test_case "unknown name" `Quick test_by_name_unknown;
          Alcotest.test_case "small suite" `Quick test_small_suite;
        ] );
      ( "multiplier",
        [
          Alcotest.test_case "4x4 exhaustive" `Quick test_multiplier_exhaustive_4x4;
          Alcotest.test_case "8x8 spot checks" `Quick test_multiplier_spot_8x8;
          Alcotest.test_case "c6288 shape" `Quick test_c6288_like_shape;
        ] );
      ( "ecc",
        [
          Alcotest.test_case "clean passthrough" `Quick test_ecc_no_error_passthrough;
          Alcotest.test_case "single error corrected" `Quick test_ecc_corrects_single_error;
          Alcotest.test_case "c499 shape" `Quick test_c499_like_shape;
          Alcotest.test_case "bad parameters" `Quick test_ecc_rejects_bad_params;
        ] );
      ( "alu",
        [
          Alcotest.test_case "operations" `Quick test_alu_operations;
          Alcotest.test_case "c880 shape" `Quick test_c880_like_shape;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "sanitization" `Quick test_verilog_sanitizes;
          Alcotest.test_case "whole library" `Quick test_verilog_covers_whole_library;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "c432 shape" `Quick test_interrupt_shape;
          Alcotest.test_case "matches reference" `Quick test_interrupt_random_vs_reference;
          Alcotest.test_case "priority semantics" `Quick test_interrupt_priority_semantics;
          Alcotest.test_case "enables gate requests" `Quick test_interrupt_enables_gate_requests;
          Alcotest.test_case "parameterized" `Quick test_interrupt_scales;
        ] );
      ("properties", props);
    ]
