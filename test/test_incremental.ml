(* Property suite for the incremental cone-limited re-analysis engine
   (Compiled.Incremental): random single-PI / single-gate edit
   sequences on random DAGs and ISCAS85 circuits (c432, c7552) must
   leave every resident array bit-identical to a from-scratch
   recompute, including the edit -> edit -> revert path back to the
   original state digest; the wired search/sizing paths must be
   bit-identical to their full-pass oracles at 1, 2 and 4 domains. *)

let with_pool = Parallel.Pool.with_pool

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let net_name (net : Circuit.Netlist.t) = net.Circuit.Netlist.name

let check_bits name a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%h vs %h)" name a b) true (bits_equal a b)

let check_floats_exact name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) (Printf.sprintf "%s [%d]" name i) true (bits_equal x b.(i)))
    a

let dag profile_seed n_gates =
  Circuit.Generators.random_dag
    {
      Circuit.Generators.name = Printf.sprintf "dag%d-%d" n_gates profile_seed;
      n_pi = 48;
      n_po = 16;
      n_gates;
      seed = profile_seed;
    }

let leak_nets =
  lazy
    [
      Circuit.Generators.by_name "c432";
      Circuit.Generators.by_name "c7552";
      dag 11 1500;
      dag 12 800;
    ]

let analysis_nets = lazy [ Circuit.Generators.by_name "c432"; dag 11 1500 ]

let tables_of net = Leakage.Circuit_leakage.build_tables Device.Tech.ptm_90nm net ~temp_k:400.0

let node_sp_of net =
  Logic.Signal_prob.analytic net ~input_sp:(Logic.Signal_prob.uniform_inputs net 0.5)

let leak_ctx_of net =
  let tables = tables_of net in
  Compiled.Incremental.Leak.ctx (Compiled.Arena.get net)
    ~currents:(Leakage.Circuit_leakage.node_currents tables net)

let analysis_ctx_of net =
  let tables = tables_of net in
  let config = Aging.Circuit_aging.default_config () in
  Compiled.Incremental.Analysis.ctx (Compiled.Arena.get net)
    ~currents:(Leakage.Circuit_leakage.node_currents tables net)
    ~node_sp:(node_sp_of net) ~params:config.Aging.Circuit_aging.params
    ~tech:config.Aging.Circuit_aging.tech ~schedule:config.Aging.Circuit_aging.schedule
    ~time:config.Aging.Circuit_aging.time ()

(* A random edit sequence: mostly single-PI flips (small cones), with
   occasional fresh random vectors to exercise the full-recompute
   fallback, and exact repeats to exercise the zero-flip cache. *)
let edit_sequence rng ~n_pi ~n =
  let current = Array.make n_pi false in
  List.init n (fun _ ->
      let r = Physics.Rng.int rng 10 in
      if r < 7 then begin
        let k = Physics.Rng.int rng n_pi in
        current.(k) <- not current.(k)
      end
      else if r < 9 then
        for k = 0 to n_pi - 1 do
          current.(k) <- Physics.Rng.bool rng
        done;
      (* r = 9: resubmit the current vector unchanged. *)
      Array.copy current)

(* --- Leak sessions: every edit bit-identical to the boxed sum --- *)

let test_leak_edits () =
  let rng = Physics.Rng.create ~seed:101 in
  List.iter
    (fun net ->
      let name = net_name net in
      let tables = tables_of net in
      let s = Compiled.Incremental.Leak.session (leak_ctx_of net) in
      let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
      List.iter
        (fun v ->
          let got = Compiled.Incremental.Leak.set_vector s v in
          let oracle = Leakage.Circuit_leakage.standby_leakage tables net ~vector:v in
          check_bits (name ^ " leakage") oracle got)
        (edit_sequence rng ~n_pi ~n:40);
      let st = Compiled.Incremental.Leak.stats s in
      Alcotest.(check bool) (name ^ " some edits avoided fallback") true
        (st.Compiled.Incremental.fallbacks < st.Compiled.Incremental.edits))
    (Lazy.force leak_nets)

let test_leak_revert_digest () =
  List.iter
    (fun net ->
      let name = net_name net in
      let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
      let s = Compiled.Incremental.Leak.session (leak_ctx_of net) in
      let d0 = Compiled.Incremental.Leak.digest s in
      let v = Array.make n_pi false in
      let flip k =
        v.(k) <- not v.(k);
        ignore (Compiled.Incremental.Leak.set_vector s (Array.copy v))
      in
      (* edit -> edit -> revert in reverse order, back to all-false. *)
      flip 3;
      flip (n_pi - 1);
      flip (n_pi - 1);
      flip 3;
      Alcotest.(check string) (name ^ " digest restored") d0
        (Compiled.Incremental.Leak.digest s);
      (* A large edit (fallback full recompute) and back again. *)
      let ones = Array.make n_pi true in
      ignore (Compiled.Incremental.Leak.set_vector s ones);
      ignore (Compiled.Incremental.Leak.set_vector s (Array.make n_pi false));
      Alcotest.(check string) (name ^ " digest restored after fallback") d0
        (Compiled.Incremental.Leak.digest s))
    (Lazy.force leak_nets)

(* --- Analysis sessions: leakage + dvth + aged STA vs the full pass --- *)

let check_against_analyze name config net ~node_sp s v =
  Compiled.Incremental.Analysis.set_vector s v;
  let oracle =
    Aging.Circuit_aging.analyze config net ~node_sp
      ~standby:(Aging.Circuit_aging.Standby_vector v) ()
  in
  check_bits (name ^ " aged max") oracle.Aging.Circuit_aging.aged.Sta.Timing.max_delay
    (Compiled.Incremental.Analysis.aged_delay s);
  check_bits (name ^ " degradation") oracle.Aging.Circuit_aging.degradation
    (Compiled.Incremental.Analysis.degradation s);
  check_bits (name ^ " max dvth") oracle.Aging.Circuit_aging.max_dvth
    (Compiled.Incremental.Analysis.max_dvth s);
  let aged = Compiled.Incremental.Analysis.aged_result s in
  check_floats_exact (name ^ " arrivals") oracle.Aging.Circuit_aging.aged.Sta.Timing.arrival
    aged.Sta.Timing.arrival;
  check_floats_exact (name ^ " gate delays")
    oracle.Aging.Circuit_aging.aged.Sta.Timing.gate_delay aged.Sta.Timing.gate_delay;
  Alcotest.(check (list int))
    (name ^ " critical path")
    oracle.Aging.Circuit_aging.aged.Sta.Timing.critical_path aged.Sta.Timing.critical_path

let test_analysis_edits () =
  let rng = Physics.Rng.create ~seed:202 in
  let config = Aging.Circuit_aging.default_config () in
  List.iter
    (fun net ->
      let name = net_name net in
      let node_sp = node_sp_of net in
      let s = Compiled.Incremental.Analysis.session (analysis_ctx_of net) in
      let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
      List.iter
        (fun v -> check_against_analyze name config net ~node_sp s v)
        (edit_sequence rng ~n_pi ~n:10))
    (Lazy.force analysis_nets)

let test_analysis_c7552_flips () =
  (* The bench-gated workload: single-PI flips on c7552, against the
     full compiled analysis. *)
  let net = Circuit.Generators.by_name "c7552" in
  let config = Aging.Circuit_aging.default_config () in
  let node_sp = node_sp_of net in
  let s = Compiled.Incremental.Analysis.session (analysis_ctx_of net) in
  let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
  let v = Array.make n_pi false in
  List.iter
    (fun k ->
      v.(k) <- not v.(k);
      check_against_analyze "c7552" config net ~node_sp s (Array.copy v))
    [ 0; 17; 101; n_pi - 1; 17 ]

let test_analysis_revert_digest () =
  List.iter
    (fun net ->
      let name = net_name net in
      let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
      let s = Compiled.Incremental.Analysis.session (analysis_ctx_of net) in
      let d0 = Compiled.Incremental.Analysis.digest s in
      let v = Array.make n_pi false in
      let set k b =
        v.(k) <- b;
        Compiled.Incremental.Analysis.set_vector s (Array.copy v)
      in
      set 1 true;
      set 5 true;
      set 5 false;
      set 1 false;
      Alcotest.(check string) (name ^ " digest restored") d0
        (Compiled.Incremental.Analysis.digest s))
    (Lazy.force analysis_nets)

let test_analysis_duty_probe () =
  (* Forcing one stage's duty pair must match a full analysis over the
     same modified duty table. *)
  let net = Circuit.Generators.by_name "c432" in
  let config = Aging.Circuit_aging.default_config () in
  let node_sp = node_sp_of net in
  let standby = Aging.Circuit_aging.Standby_vector
      (Array.make (Array.length (Circuit.Netlist.primary_inputs net)) false)
  in
  let duties = Aging.Circuit_aging.duty_table net ~node_sp ~standby in
  let gate =
    (* first gate node *)
    let rec find i = if Array.length duties.(i) > 0 then i else find (i + 1) in
    find 0
  in
  let active, standby_duty = (0.9, 0.8) in
  let s = Compiled.Incremental.Analysis.session (analysis_ctx_of net) in
  Compiled.Incremental.Analysis.set_gate_duty s gate ~stage:0 ~active ~standby:standby_duty;
  let duties' = Array.copy duties in
  duties'.(gate) <- Array.copy duties.(gate);
  duties'.(gate).(0) <- (active, standby_duty);
  let oracle = Aging.Circuit_aging.analyze_with_duties config net ~duties:duties' () in
  check_bits "duty probe aged max" oracle.Aging.Circuit_aging.aged.Sta.Timing.max_delay
    (Compiled.Incremental.Analysis.aged_delay s);
  check_bits "duty probe max dvth" oracle.Aging.Circuit_aging.max_dvth
    (Compiled.Incremental.Analysis.max_dvth s)

(* --- Co-optimization: incremental vs full pass, 1/2/4 domains --- *)

let with_enabled b f =
  Compiled.Incremental.set_enabled (Some b);
  Fun.protect ~finally:(fun () -> Compiled.Incremental.set_enabled None) f

let check_choice name (a : Ivc.Co_opt.choice) (b : Ivc.Co_opt.choice) =
  Alcotest.(check string) (name ^ " vector") (Ivc.Mlv.vector_key a.Ivc.Co_opt.vector)
    (Ivc.Mlv.vector_key b.Ivc.Co_opt.vector);
  check_bits (name ^ " leakage") a.Ivc.Co_opt.leakage b.Ivc.Co_opt.leakage;
  check_bits (name ^ " degradation") a.Ivc.Co_opt.degradation b.Ivc.Co_opt.degradation;
  check_bits (name ^ " aged") a.Ivc.Co_opt.aged_delay b.Ivc.Co_opt.aged_delay

let test_co_opt_domains () =
  let net = Circuit.Generators.by_name "c432" in
  let config = Aging.Circuit_aging.default_config () in
  let tables = tables_of net in
  let node_sp = node_sp_of net in
  let n_pi = Array.length (Circuit.Netlist.primary_inputs net) in
  (* A correlated candidate cluster: one random base vector and its
     single-bit neighbours, like an MLV set. *)
  let rng = Physics.Rng.create ~seed:9 in
  let base = Array.init n_pi (fun _ -> Physics.Rng.bool rng) in
  let candidates =
    Ivc.Mlv.evaluate tables net base
    :: List.init 7 (fun i ->
           let v = Array.copy base in
           v.(i * 3) <- not v.(i * 3);
           Ivc.Mlv.evaluate tables net v)
  in
  let reference =
    with_enabled false (fun () ->
        Ivc.Co_opt.co_optimize config tables net ~node_sp ~candidates)
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun par ->
          let got =
            with_enabled true (fun () ->
                Ivc.Co_opt.co_optimize ~par config tables net ~node_sp ~candidates)
          in
          let name = Printf.sprintf "co_opt @ %d domains" domains in
          check_bits (name ^ " fresh") reference.Ivc.Co_opt.fresh_delay got.Ivc.Co_opt.fresh_delay;
          check_bits (name ^ " spread") reference.Ivc.Co_opt.spread got.Ivc.Co_opt.spread;
          check_choice (name ^ " best") reference.Ivc.Co_opt.best got.Ivc.Co_opt.best;
          Alcotest.(check int) (name ^ " count") (List.length reference.Ivc.Co_opt.all)
            (List.length got.Ivc.Co_opt.all);
          List.iter2 (fun a b -> check_choice (name ^ " all") a b) reference.Ivc.Co_opt.all
            got.Ivc.Co_opt.all))
    [ 1; 2; 4 ]

let test_searches_match_disabled () =
  (* The incremental-session searches must return exactly what the
     scratch-evaluator searches return. *)
  let net = Circuit.Generators.by_name "c17" in
  let tables = tables_of net in
  let on, off =
    ( with_enabled true (fun () -> Ivc.Mlv.exhaustive tables net),
      with_enabled false (fun () -> Ivc.Mlv.exhaustive tables net) )
  in
  Alcotest.(check string) "exhaustive vector" (Ivc.Mlv.vector_key off.Ivc.Mlv.vector)
    (Ivc.Mlv.vector_key on.Ivc.Mlv.vector);
  check_bits "exhaustive leakage" off.Ivc.Mlv.leakage on.Ivc.Mlv.leakage;
  let net = Circuit.Generators.by_name "c432" in
  let tables = tables_of net in
  let run enabled =
    with_enabled enabled (fun () ->
        Ivc.Mlv.random_search tables net ~rng:(Physics.Rng.create ~seed:5) ~n:64)
  in
  let on, off = (run true, run false) in
  Alcotest.(check string) "random vector" (Ivc.Mlv.vector_key off.Ivc.Mlv.vector)
    (Ivc.Mlv.vector_key on.Ivc.Mlv.vector);
  check_bits "random leakage" off.Ivc.Mlv.leakage on.Ivc.Mlv.leakage;
  let search enabled =
    with_enabled enabled (fun () ->
        Ivc.Mlv.probability_based tables net ~rng:(Physics.Rng.create ~seed:6) ~pool:16
          ~max_rounds:4 ())
  in
  let set_on, _ = search true and set_off, _ = search false in
  Alcotest.(check int) "probability_based set size" (List.length set_off) (List.length set_on);
  List.iter2
    (fun (a : Ivc.Mlv.candidate) (b : Ivc.Mlv.candidate) ->
      Alcotest.(check string) "probability_based vector"
        (Ivc.Mlv.vector_key a.Ivc.Mlv.vector)
        (Ivc.Mlv.vector_key b.Ivc.Mlv.vector);
      check_bits "probability_based leakage" a.Ivc.Mlv.leakage b.Ivc.Mlv.leakage)
    set_off set_on

let test_random_search_budget () =
  (* Satellite: an expired deadline returns the best-so-far (one
     candidate evaluated) instead of raising; the prefix of the RNG
     stream matches the unbounded run's. *)
  let net = Circuit.Generators.by_name "c432" in
  let tables = tables_of net in
  let first =
    Ivc.Mlv.random_search tables net ~rng:(Physics.Rng.create ~seed:8) ~n:1
  in
  let bounded =
    Ivc.Mlv.random_search
      ~budget:(Parallel.Budget.of_timeout_s 0.0)
      tables net ~rng:(Physics.Rng.create ~seed:8) ~n:10_000
  in
  Alcotest.(check string) "expired budget returns first candidate"
    (Ivc.Mlv.vector_key first.Ivc.Mlv.vector)
    (Ivc.Mlv.vector_key bounded.Ivc.Mlv.vector);
  check_bits "expired budget leakage" first.Ivc.Mlv.leakage bounded.Ivc.Mlv.leakage;
  let unbounded =
    Ivc.Mlv.random_search ~budget:Parallel.Budget.unlimited tables net
      ~rng:(Physics.Rng.create ~seed:8) ~n:64
  in
  let plain = Ivc.Mlv.random_search tables net ~rng:(Physics.Rng.create ~seed:8) ~n:64 in
  check_bits "unlimited budget = no budget" plain.Ivc.Mlv.leakage unbounded.Ivc.Mlv.leakage

(* --- Sizing sessions: drive edits, cell swaps, dvth probes --- *)

let sizing_oracle config net ~node_sp ~standby ~drives =
  let duties = Aging.Circuit_aging.duty_table net ~node_sp ~standby in
  let stage_dvth = Aging.Circuit_aging.stage_dvth_of_duties config ~duties in
  let tech = config.Aging.Circuit_aging.tech in
  let temp_k = config.Aging.Circuit_aging.schedule.Nbti.Schedule.t_ref in
  let sized = Mitigation.Gate_sizing.materialize net ~drives in
  Sta.Timing.analyze tech sized ~temp_k ~stage_dvth ()

let sizing_session config net ~node_sp ~standby =
  let duties = Aging.Circuit_aging.duty_table net ~node_sp ~standby in
  let stage_dvth = Aging.Circuit_aging.stage_dvth_of_duties config ~duties in
  let a = Compiled.Arena.get net in
  let dvth = Array.make a.Compiled.Arena.n_stages 0.0 in
  for i = 0 to a.Compiled.Arena.n_nodes - 1 do
    if a.Compiled.Arena.op.(i) <> Compiled.Arena.op_pi then
      for st = 0 to a.Compiled.Arena.stage_off.(i + 1) - a.Compiled.Arena.stage_off.(i) - 1 do
        dvth.(a.Compiled.Arena.stage_off.(i) + st) <- stage_dvth ~gate:i ~stage:st
      done
  done;
  Compiled.Incremental.Sizing.session a ~tech:config.Aging.Circuit_aging.tech
    ~temp_k:config.Aging.Circuit_aging.schedule.Nbti.Schedule.t_ref ~dvth ()

let gate_ids net =
  let ids = ref [] in
  Array.iteri
    (fun i node ->
      match node with
      | Circuit.Netlist.Primary_input _ -> ()
      | Circuit.Netlist.Gate _ -> ids := i :: !ids)
    net.Circuit.Netlist.nodes;
  Array.of_list (List.rev !ids)

let test_sizing_drive_edits () =
  let rng = Physics.Rng.create ~seed:303 in
  let config = Aging.Circuit_aging.default_config () in
  List.iter
    (fun net ->
      let name = net_name net in
      let node_sp = node_sp_of net in
      let standby = Aging.Circuit_aging.Standby_all_stressed in
      let s = sizing_session config net ~node_sp ~standby in
      let gates = gate_ids net in
      let drives = Array.make (Circuit.Netlist.n_nodes net) 1.0 in
      for edit = 1 to 8 do
        let g = gates.(Physics.Rng.int rng (Array.length gates)) in
        let d = [| 1.2; 1.44; 2.0; 4.0 |].(Physics.Rng.int rng 4) in
        drives.(g) <- d;
        Compiled.Incremental.Sizing.set_drive s g d;
        let oracle = sizing_oracle config net ~node_sp ~standby ~drives in
        check_bits
          (Printf.sprintf "%s edit %d aged max" name edit)
          oracle.Sta.Timing.max_delay
          (Compiled.Incremental.Sizing.aged_max s);
        if edit = 8 then begin
          let aged = Compiled.Incremental.Sizing.aged_result s in
          check_floats_exact (name ^ " arrivals") oracle.Sta.Timing.arrival
            aged.Sta.Timing.arrival;
          Alcotest.(check (list int))
            (name ^ " critical path")
            oracle.Sta.Timing.critical_path aged.Sta.Timing.critical_path
        end
      done;
      (* Revert every edit: back to the unsized delays. *)
      let oracle0 =
        sizing_oracle config net ~node_sp ~standby
          ~drives:(Array.make (Circuit.Netlist.n_nodes net) 1.0)
      in
      Array.iter
        (fun g -> if drives.(g) <> 1.0 then Compiled.Incremental.Sizing.set_drive s g 1.0)
        gates;
      check_bits (name ^ " reverted aged max") oracle0.Sta.Timing.max_delay
        (Compiled.Incremental.Sizing.aged_max s))
    [ Circuit.Generators.by_name "c432"; dag 12 800 ]

let test_sizing_cell_swap_and_probe () =
  let config = Aging.Circuit_aging.default_config () in
  let net = Circuit.Generators.by_name "c432" in
  let node_sp = node_sp_of net in
  let standby = Aging.Circuit_aging.Standby_all_stressed in
  let gates = gate_ids net in
  let g = gates.(Array.length gates / 2) in
  (* Cell swap: replacing a gate's cell with its 2x-scaled variant must
     equal materializing that drive. *)
  let s = sizing_session config net ~node_sp ~standby in
  let cell =
    match net.Circuit.Netlist.nodes.(g) with
    | Circuit.Netlist.Gate { cell; _ } -> cell
    | Circuit.Netlist.Primary_input _ -> assert false
  in
  Compiled.Incremental.Sizing.set_cell s g (Cell.Stdcell.scaled cell ~drive:2.0);
  let drives = Array.make (Circuit.Netlist.n_nodes net) 1.0 in
  drives.(g) <- 2.0;
  let oracle = sizing_oracle config net ~node_sp ~standby ~drives in
  check_bits "cell swap aged max" oracle.Sta.Timing.max_delay
    (Compiled.Incremental.Sizing.aged_max s);
  (* Vth probe: adding an offset to one gate's PMOS shift must equal a
     full pass with the perturbed closure; clearing it restores the
     original bits. *)
  let s = sizing_session config net ~node_sp ~standby in
  let before = Compiled.Incremental.Sizing.aged_max s in
  let off = 0.015 in
  Compiled.Incremental.Sizing.set_gate_dvth s g off;
  let duties = Aging.Circuit_aging.duty_table net ~node_sp ~standby in
  let stage_dvth = Aging.Circuit_aging.stage_dvth_of_duties config ~duties in
  let perturbed ~gate ~stage =
    let d = stage_dvth ~gate ~stage in
    if gate = g then d +. off else d
  in
  let oracle =
    Sta.Timing.analyze config.Aging.Circuit_aging.tech net
      ~temp_k:config.Aging.Circuit_aging.schedule.Nbti.Schedule.t_ref ~stage_dvth:perturbed ()
  in
  check_bits "dvth probe aged max" oracle.Sta.Timing.max_delay
    (Compiled.Incremental.Sizing.aged_max s);
  Compiled.Incremental.Sizing.set_gate_dvth s g 0.0;
  check_bits "dvth probe cleared" before (Compiled.Incremental.Sizing.aged_max s)

let test_optimize_matches_boxed () =
  let config = Aging.Circuit_aging.default_config () in
  List.iter
    (fun net ->
      let name = net_name net in
      let node_sp = node_sp_of net in
      let standby = Aging.Circuit_aging.Standby_all_stressed in
      let boxed =
        Mitigation.Gate_sizing.optimize_boxed config net ~node_sp ~standby ~margin:0.005 ()
      in
      let incr =
        with_enabled true (fun () ->
            Mitigation.Gate_sizing.optimize config net ~node_sp ~standby ~margin:0.005 ())
      in
      check_floats_exact (name ^ " drives") boxed.Mitigation.Gate_sizing.drives
        incr.Mitigation.Gate_sizing.drives;
      check_bits (name ^ " aged before") boxed.Mitigation.Gate_sizing.aged_before
        incr.Mitigation.Gate_sizing.aged_before;
      check_bits (name ^ " aged after") boxed.Mitigation.Gate_sizing.aged_after
        incr.Mitigation.Gate_sizing.aged_after;
      check_bits (name ^ " fresh after") boxed.Mitigation.Gate_sizing.fresh_after
        incr.Mitigation.Gate_sizing.fresh_after;
      check_bits (name ^ " area overhead") boxed.Mitigation.Gate_sizing.area_overhead
        incr.Mitigation.Gate_sizing.area_overhead;
      Alcotest.(check int) (name ^ " iterations") boxed.Mitigation.Gate_sizing.iterations
        incr.Mitigation.Gate_sizing.iterations;
      Alcotest.(check bool) (name ^ " met") boxed.Mitigation.Gate_sizing.met
        incr.Mitigation.Gate_sizing.met)
    [ Circuit.Generators.by_name "c432"; dag 11 1500 ]

let () =
  Alcotest.run "incremental"
    [
      ( "leak",
        [
          Alcotest.test_case "random edits = boxed leakage" `Quick test_leak_edits;
          Alcotest.test_case "edit-edit-revert restores digest" `Quick test_leak_revert_digest;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "random edits = full analysis" `Quick test_analysis_edits;
          Alcotest.test_case "c7552 single-PI flips = full analysis" `Quick
            test_analysis_c7552_flips;
          Alcotest.test_case "edit-edit-revert restores digest" `Quick
            test_analysis_revert_digest;
          Alcotest.test_case "duty probe = analyze_with_duties" `Quick test_analysis_duty_probe;
        ] );
      ( "search",
        [
          Alcotest.test_case "co_optimize = full pass, 1/2/4 domains" `Quick
            test_co_opt_domains;
          Alcotest.test_case "searches match disabled paths" `Quick
            test_searches_match_disabled;
          Alcotest.test_case "random_search returns best-so-far on expiry" `Quick
            test_random_search_budget;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "drive edits = materialized full STA" `Quick
            test_sizing_drive_edits;
          Alcotest.test_case "cell swap and dvth probe = perturbed STA" `Quick
            test_sizing_cell_swap_and_probe;
          Alcotest.test_case "optimize = optimize_boxed" `Quick test_optimize_matches_boxed;
        ] );
    ]
